// Command tracesmoke is the end-to-end check of distributed tracing:
// it serves the full HTTP stack over a 3-worker loopback cluster with
// one induced shard failure, submits a traced experiment, fetches the
// merged timeline from GET /v1/traces/{id}, and asserts the trace
// covers every layer — request, job, queue wait, per-worker shard
// execution — with the retry evidence, while the report stays
// byte-identical to the serial golden snapshot. Run from the repo root:
//
//	go run ./internal/tools/tracesmoke
//	make trace-smoke
//
// Exit status 0 means one coherent cross-node trace existed and
// recording did not perturb the simulation; anything else is a tracing
// or determinism bug.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
)

func main() {
	golden := flag.String("golden",
		filepath.Join("internal", "experiments", "testdata", "golden", "ext-coopber_quick_seed1.txt"),
		"serial golden report to compare against")
	flag.Parse()

	want, err := os.ReadFile(*golden)
	if err != nil {
		fatal(fmt.Errorf("reading golden (run from the repo root): %w", err))
	}

	lb := cluster.NewLoopback("w1", "w2", "w3")
	lb.Node("w1").FailNext(1) // one transient failure → retry + worker_dead
	reg := cluster.NewRegistry(lb, "w1", "w2", "w3")
	co := cluster.NewCoordinator(lb, reg, cluster.Config{
		Shards:    3,
		RetryBase: time.Millisecond,
		RetryMax:  10 * time.Millisecond,
	})

	rec := obs.NewTraceRecorder(16, 1<<15)
	svc, err := service.New(service.Config{
		Workers:  2,
		Recorder: rec,
		Runner: func(jctx context.Context, req service.Request) (string, error) {
			return service.ExperimentRunner(sim.WithExecutor(jctx, co), req)
		},
		KnownIDs: service.KnownExperimentIDs(),
	})
	if err != nil {
		fatal(err)
	}
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Stop(ctx)
	}()
	ts := httptest.NewServer(httpapi.NewMux(svc, httpapi.Config{Recorder: rec}))
	defer ts.Close()

	start := time.Now()
	body := `{"id":"ext-coopber","seed":1,"quick":true,"wait":true}`
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json",
		bytes.NewReader([]byte(body)))
	if err != nil {
		fatal(err)
	}
	var jr httpapi.JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("submit status %d", resp.StatusCode))
	}
	tid := resp.Header.Get("X-Trace-Id")
	if tid == "" {
		fatal(fmt.Errorf("no X-Trace-Id on response"))
	}
	if jr.Report != string(want) {
		fmt.Fprintf(os.Stderr, "tracesmoke: FAIL — traced distributed report differs from serial golden\n--- got ---\n%s--- want ---\n%s", jr.Report, want)
		os.Exit(1)
	}

	tr, err := fetchTrace(ts.URL, tid)
	if err != nil {
		fatal(err)
	}

	spans := map[string]int{}
	nodes := map[string]bool{}
	events := map[string]int{}
	for _, sd := range tr.Spans {
		spans[sd.Name]++
		if sd.Name == "shard.execute" {
			if n := sd.Attr("node"); n != "" {
				nodes[n] = true
			}
		}
		for _, ev := range sd.Events {
			events[ev.Name]++
		}
	}
	for _, name := range []string{"http.request", "job.run", "queue.wait",
		"driver.run", "cluster.run", "cluster.shard", "shard.execute", "mc.fold"} {
		if spans[name] == 0 {
			fatal(fmt.Errorf("merged trace missing %q spans; have %v", name, spans))
		}
	}
	if len(nodes) < 2 {
		fatal(fmt.Errorf("shard.execute spans name %d distinct workers, want >= 2", len(nodes)))
	}
	if events["retry"] == 0 || events["worker_dead"] == 0 {
		fatal(fmt.Errorf("induced failure left no retry/worker_dead events; have %v", events))
	}

	// The Chrome export must be valid trace_event JSON.
	cresp, err := http.Get(ts.URL + "/v1/traces/" + tid + "?format=chrome")
	if err != nil {
		fatal(err)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	err = json.NewDecoder(cresp.Body).Decode(&chrome)
	cresp.Body.Close()
	if err != nil {
		fatal(fmt.Errorf("chrome export: %w", err))
	}
	if len(chrome.TraceEvents) < len(tr.Spans) {
		fatal(fmt.Errorf("chrome export has %d events for %d spans", len(chrome.TraceEvents), len(tr.Spans)))
	}

	fmt.Printf("tracesmoke: ok — %d spans across %d workers, retry evidenced, report matches golden, chrome export valid (%v)\n",
		len(tr.Spans), len(nodes), time.Since(start).Round(time.Millisecond))
}

// fetchTrace polls the trace endpoint until the request root span has
// landed (the middleware records it only after the response is written).
func fetchTrace(base, id string) (obs.Trace, error) {
	var tr obs.Trace
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/traces/" + id)
		if err != nil {
			return tr, err
		}
		if resp.StatusCode == http.StatusOK {
			err = json.NewDecoder(resp.Body).Decode(&tr)
			resp.Body.Close()
			if err != nil {
				return tr, err
			}
			for _, sd := range tr.Spans {
				if sd.Name == "http.request" {
					return tr, nil
				}
			}
		} else {
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			return tr, fmt.Errorf("trace %s incomplete after 5s: %d spans", id, len(tr.Spans))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracesmoke:", err)
	os.Exit(1)
}
