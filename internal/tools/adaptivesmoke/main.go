// Command adaptivesmoke is the end-to-end check of the adaptive
// Monte-Carlo subsystem on a deep-BER point. It runs one 2x2
// cooperative cell under a Wilson-stopped trial budget and asserts the
// three promises the subsystem makes:
//
//  1. Accuracy: the run stops only once the relative Wilson 95%
//     half-width of the BER is inside the target.
//  2. Economy: the realized spend is at least 10x below the fixed
//     budget a non-adaptive run of the same cell would burn, and the
//     full-budget fixed run's estimate agrees with the adaptive one to
//     within 5 combined standard errors — same answer, a fraction of
//     the trials.
//  3. Replayability: the recorded sim.PlanTrace reproduces the result
//     bit-identically, serially AND sharded across a 3-worker loopback
//     cluster with one worker killed mid-campaign.
//
// Run from the repo root:
//
//	go run ./internal/tools/adaptivesmoke
//	make adaptive-smoke
//
// Exit status 0 means the stopping rule, the budget accounting and the
// replay contract all hold; anything else is a statistics or
// scheduling bug.
package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/adaptive"
	"repro/internal/cluster"
	"repro/internal/sim"

	_ "repro/internal/simkern" // register coop.ber.adaptive
)

func main() {
	const (
		kernel  = "coop.ber.adaptive"
		seed    = 1
		bits    = 64
		minGain = 10.0
	)
	params := map[string]float64{"mt": 2, "mr": 2, "snr_db": 6, "bits": bits}
	budget := adaptive.Budget{TargetRelCI: 0.10, MaxTrials: 64 * sim.ChunkSize}
	mc := sim.MonteCarlo{Seed: seed}

	// 1. The adaptive run: must stop early and certify its target.
	start := time.Now()
	res, err := adaptive.Run(context.Background(), mc, kernel, params, budget)
	if err != nil {
		fatal(err)
	}
	adaptiveDur := time.Since(start)
	if !res.Trace.Stopped {
		fatal(fmt.Errorf("budget of %d trials exhausted without meeting ±%.0f%%; deep point too deep for the smoke",
			budget.MaxTrials, 100*budget.TargetRelCI))
	}
	p := res.Stats.Mean()
	units := float64(res.Stats.N()) * bits
	lo, hi := adaptive.Wilson(p*units, units, adaptive.Z95)
	rel := (hi - lo) / 2 / p
	if rel > budget.TargetRelCI {
		fatal(fmt.Errorf("stopped with relative CI %.3f > target %.3f", rel, budget.TargetRelCI))
	}
	fmt.Printf("adaptivesmoke: BER %.3e ±%.1f%% after %d of %d budgeted trials (%d rounds, %v)\n",
		p, 100*rel, res.Trace.Trials, budget.MaxTrials, len(res.Trace.Rounds), adaptiveDur.Round(time.Millisecond))

	// 2. Economy: >= 10x fewer trials than the fixed budget, and the
	// fixed full-budget estimate must sit inside the adaptive CI — the
	// cheap answer is the same answer.
	gain := float64(budget.MaxTrials) / float64(res.Trace.Trials)
	if gain < minGain {
		fatal(fmt.Errorf("trials-to-target gain %.1fx < %.0fx (realized %d of %d)",
			gain, minGain, res.Trace.Trials, budget.MaxTrials))
	}
	fixed, err := mc.RunKernelCtx(context.Background(), kernel, params, budget.MaxTrials)
	if err != nil {
		fatal(err)
	}
	tol := 5 * math.Hypot(res.Stats.StdErr(), fixed.StdErr())
	if diff := math.Abs(fixed.Mean() - p); diff > tol {
		fatal(fmt.Errorf("fixed-budget BER %.3e vs adaptive %.3e: |diff| %.2e > 5-sigma tolerance %.2e",
			fixed.Mean(), p, diff, tol))
	}
	fmt.Printf("adaptivesmoke: %.1fx fewer trials than the fixed budget; fixed-run BER %.3e agrees within tolerance\n",
		gain, fixed.Mean())

	// 3a. Serial replay: byte-identical statistics from the trace.
	rep, err := adaptive.Replay(context.Background(), mc, kernel, params, res.Trace)
	if err != nil {
		fatal(err)
	}
	if rep.Stats.Snapshot() != res.Stats.Snapshot() {
		fatal(fmt.Errorf("serial replay diverged: %+v != %+v", rep.Stats.Snapshot(), res.Stats.Snapshot()))
	}

	// 3b. Cluster replay: 3 loopback workers, one killed before any
	// round runs. Shards reassign; bits do not move.
	lb := cluster.NewLoopback("w1", "w2", "w3")
	reg := cluster.NewRegistry(lb, "w1", "w2", "w3")
	co := cluster.NewCoordinator(lb, reg, cluster.Config{
		Shards: 3, RetryBase: time.Millisecond, RetryMax: 10 * time.Millisecond,
	})
	lb.Node("w2").Kill()
	ctx := sim.WithExecutor(context.Background(), co)

	dist, err := adaptive.Run(ctx, mc, kernel, params, budget)
	if err != nil {
		fatal(err)
	}
	if dist.Stats.Snapshot() != res.Stats.Snapshot() || dist.Trace.Trials != res.Trace.Trials {
		fatal(fmt.Errorf("distributed adaptive run diverged from serial"))
	}
	crep, err := adaptive.Replay(ctx, mc, kernel, params, res.Trace)
	if err != nil {
		fatal(err)
	}
	if crep.Stats.Snapshot() != res.Stats.Snapshot() {
		fatal(fmt.Errorf("cluster replay diverged: %+v != %+v", crep.Stats.Snapshot(), res.Stats.Snapshot()))
	}
	if lb.Node("w1").Shards()+lb.Node("w3").Shards() == 0 {
		fatal(fmt.Errorf("no surviving worker computed a shard"))
	}
	fmt.Println("adaptivesmoke: replay byte-identical serially and across 3-worker loopback with one worker killed")
	fmt.Println("adaptivesmoke: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adaptivesmoke:", err)
	os.Exit(1)
}
