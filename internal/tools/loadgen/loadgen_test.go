package loadgen

import (
	"strings"
	"testing"
	"time"
)

// TestFairnessUnderHeavyTenant is the fairness acceptance run: 50
// tenants, one submitting a 10× burst before anyone else, must not
// push the light tenants' p99 queue wait past 2× the fair completion
// horizon — and the heavy backlog must finish last, not first.
func TestFairnessUnderHeavyTenant(t *testing.T) {
	if testing.Short() {
		t.Skip("load generation is not a -short test")
	}
	rep, err := Run(Config{
		Tenants:       50,
		JobsPerTenant: 4,
		HeavyFactor:   10,
		Workers:       8,
		JobDuration:   10 * time.Millisecond,
	})
	t.Logf("loadgen: %s", rep)
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsSubmitted != 49*4+40 {
		t.Fatalf("jobs submitted = %d", rep.JobsSubmitted)
	}
	if rep.SSECompleted == 0 || rep.SSEEvents < rep.SSECompleted {
		t.Fatalf("sse streams: %d events, %d completed", rep.SSEEvents, rep.SSECompleted)
	}
	// The heavy burst landed first: under FIFO its p99 would beat the
	// light tenants' by the full burst width. Fair scheduling inverts
	// that — Run already asserts it, but keep the direction visible here.
	if rep.LightP99Wait > rep.HeavyP99Wait {
		t.Fatalf("light p99 %v exceeds heavy p99 %v", rep.LightP99Wait, rep.HeavyP99Wait)
	}
}

// TestRunRejectsImpossibleBounds: a deliberately unachievable ratio
// must fail loudly, proving the assertions are live.
func TestRunRejectsImpossibleBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("load generation is not a -short test")
	}
	_, err := Run(Config{
		Tenants:       8,
		JobsPerTenant: 2,
		HeavyFactor:   4,
		Workers:       2,
		JobDuration:   5 * time.Millisecond,
		// No scheduler can hold light p99 under 1/10⁶ of the fair share.
		FairShareRatio: 1e-6,
	})
	if err == nil {
		t.Fatal("impossible fairness bound did not fail")
	}
	if !strings.Contains(err.Error(), "fair share") {
		t.Fatalf("unexpected failure: %v", err)
	}
}
