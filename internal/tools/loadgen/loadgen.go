// Package loadgen drives a synthetic many-tenant workload against the
// real cogmimod HTTP stack (internal/httpapi over internal/service,
// hosted on an httptest listener) and measures scheduling fairness.
//
// The workload is deliberately adversarial: one heavy tenant submits
// its entire burst — an order of magnitude more jobs than anyone else —
// before any light tenant shows up. Under the old global FIFO the
// heavy backlog would run first and every light tenant's p99 queue
// wait would stretch to the whole burst; under weighted-fair
// scheduling the light tenants interleave with the heavy backlog and
// their p99 stays within a small factor of the fair completion
// horizon. Run asserts both views of that property:
//
//   - light p99 queue wait ≤ FairShareRatio × fair share, where the
//     fair share is jobsPerTenant × tenants × measured mean job time /
//     workers — the horizon by which every tenant's own backlog drains
//     under round-robin service;
//   - light p99 queue wait ≤ CrossRatio × heavy p99 queue wait: the
//     heavy tenant's 10× backlog must finish after the light tenants,
//     never by starving them (FIFO inverts this ratio by ~6×).
//
// A subset of jobs is followed over the SSE stream
// (GET /v1/jobs/{id}/events) and checked for monotonic progress ending
// in a complete event — the streaming path exercised under real
// concurrency, no polling anywhere.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/tenant"
)

// Config sizes the synthetic workload. Zero values pick the defaults
// used by `make loadgen-smoke`.
type Config struct {
	// Tenants is the total tenant count, one of which is heavy;
	// 0 means 50.
	Tenants int
	// JobsPerTenant is each light tenant's burst; 0 means 4.
	JobsPerTenant int
	// HeavyFactor multiplies JobsPerTenant for the heavy tenant;
	// 0 means 10.
	HeavyFactor int
	// Workers is the service worker pool; 0 means 8.
	Workers int
	// JobDuration is the synthetic busy time per job; 0 means 10ms.
	JobDuration time.Duration
	// ProgressSteps is how many progress increments each job emits;
	// 0 means 4.
	ProgressSteps int
	// FairShareRatio bounds light p99 against the fair completion
	// horizon; 0 means 2.0.
	FairShareRatio float64
	// CrossRatio bounds light p99 against heavy p99; 0 means 1.0.
	CrossRatio float64
	// SSEWatchers is how many jobs to follow over the event stream;
	// 0 means 3.
	SSEWatchers int
	// Logger receives the server's logs; nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Tenants <= 0 {
		c.Tenants = 50
	}
	if c.JobsPerTenant <= 0 {
		c.JobsPerTenant = 4
	}
	if c.HeavyFactor <= 0 {
		c.HeavyFactor = 10
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.JobDuration <= 0 {
		c.JobDuration = 10 * time.Millisecond
	}
	if c.ProgressSteps <= 0 {
		c.ProgressSteps = 4
	}
	if c.FairShareRatio <= 0 {
		c.FairShareRatio = 2.0
	}
	if c.CrossRatio <= 0 {
		c.CrossRatio = 1.0
	}
	if c.SSEWatchers <= 0 {
		c.SSEWatchers = 3
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Report is the measured outcome of one load run.
type Report struct {
	Tenants       int           `json:"tenants"`
	JobsSubmitted int           `json:"jobs_submitted"`
	Workers       int           `json:"workers"`
	Wall          time.Duration `json:"wall"`
	MeanJob       time.Duration `json:"mean_job"`
	FairShare     time.Duration `json:"fair_share"`
	LightP99Wait  time.Duration `json:"light_p99_wait"`
	HeavyP99Wait  time.Duration `json:"heavy_p99_wait"`
	LightMaxWait  time.Duration `json:"light_max_wait"`
	SSEEvents     int           `json:"sse_events"`
	SSECompleted  int           `json:"sse_completed"`
}

func (r Report) String() string {
	return fmt.Sprintf(
		"tenants=%d jobs=%d workers=%d wall=%v mean_job=%v fair_share=%v "+
			"light_p99_wait=%v heavy_p99_wait=%v light_max_wait=%v sse_events=%d sse_completed=%d",
		r.Tenants, r.JobsSubmitted, r.Workers, r.Wall.Round(time.Millisecond),
		r.MeanJob.Round(time.Microsecond), r.FairShare.Round(time.Millisecond),
		r.LightP99Wait.Round(time.Millisecond), r.HeavyP99Wait.Round(time.Millisecond),
		r.LightMaxWait.Round(time.Millisecond), r.SSEEvents, r.SSECompleted)
}

// Run executes the workload and checks the fairness and streaming
// assertions, returning the measurements either way (callers print the
// report even on failure).
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	totalJobs := (cfg.Tenants-1)*cfg.JobsPerTenant + cfg.HeavyFactor*cfg.JobsPerTenant

	runner := func(ctx context.Context, req service.Request) (string, error) {
		p := obs.ProgressFrom(ctx)
		p.AddTotal(int64(cfg.ProgressSteps))
		step := cfg.JobDuration / time.Duration(cfg.ProgressSteps)
		for i := 0; i < cfg.ProgressSteps; i++ {
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(step):
			}
			p.Add(1)
		}
		return "synthetic", nil
	}
	svc, err := service.New(service.Config{
		Workers: cfg.Workers,
		// The whole burst sits queued at once; the queue must hold it so
		// fairness is measured on scheduling, not on 429 shedding.
		QueueDepth: totalJobs + cfg.Workers,
		MaxJobs:    totalJobs + cfg.Workers,
		Runner:     runner,
		Logger:     cfg.Logger,
	})
	if err != nil {
		return Report{}, err
	}
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Stop(ctx)
	}()
	ts := httptest.NewServer(httpapi.NewMux(svc, httpapi.Config{Logger: cfg.Logger}))
	defer ts.Close()
	client := ts.Client()

	submit := func(tid string, seed int) (string, error) {
		body, _ := json.Marshal(map[string]any{"id": "synthetic", "seed": seed})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/experiments", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(tenant.Header, tid)
		resp, err := client.Do(req)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		var decoded struct {
			Job   string `json:"job"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusAccepted {
			return "", fmt.Errorf("submit for %s: status %d: %s", tid, resp.StatusCode, decoded.Error)
		}
		return decoded.Job, nil
	}

	// The heavy tenant's entire burst lands before any light tenant —
	// the FIFO-starvation worst case.
	heavyJobs := make([]string, 0, cfg.HeavyFactor*cfg.JobsPerTenant)
	seed := 0
	for i := 0; i < cfg.HeavyFactor*cfg.JobsPerTenant; i++ {
		seed++
		id, err := submit("heavy", seed)
		if err != nil {
			return Report{}, err
		}
		heavyJobs = append(heavyJobs, id)
	}
	lightJobs := make([]string, 0, (cfg.Tenants-1)*cfg.JobsPerTenant)
	for round := 0; round < cfg.JobsPerTenant; round++ {
		for t := 1; t < cfg.Tenants; t++ {
			seed++
			id, err := submit(fmt.Sprintf("light-%03d", t), seed)
			if err != nil {
				return Report{}, err
			}
			lightJobs = append(lightJobs, id)
		}
	}

	// Follow a few jobs over SSE while the burst drains: the first heavy
	// job still queued plus the last-submitted light jobs (the deepest
	// in the backlog, so the streams span real queue time).
	watch := make([]string, 0, cfg.SSEWatchers)
	if len(heavyJobs) > 0 {
		watch = append(watch, heavyJobs[len(heavyJobs)-1])
	}
	for i := len(lightJobs) - 1; i >= 0 && len(watch) < cfg.SSEWatchers; i-- {
		watch = append(watch, lightJobs[i])
	}
	outcomes := make([]sseOutcome, len(watch))
	var wg sync.WaitGroup
	for i, jobID := range watch {
		wg.Add(1)
		go func(i int, jobID string) {
			defer wg.Done()
			outcomes[i] = followSSE(client, ts.URL, jobID)
		}(i, jobID)
	}

	start := time.Now()
	deadline := time.Now().Add(5 * time.Minute)
	for {
		st := svc.Stats()
		if int(st.Done) >= totalJobs {
			break
		}
		if st.Failed > 0 || st.Canceled > 0 {
			return Report{}, fmt.Errorf("jobs failed=%d canceled=%d", st.Failed, st.Canceled)
		}
		if time.Now().After(deadline) {
			return Report{}, fmt.Errorf("burst not drained: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	wall := time.Since(start)
	wg.Wait()

	// Collect per-job queue waits from the job views.
	queueWait := func(jobID string) (time.Duration, error) {
		resp, err := client.Get(ts.URL + "/v1/jobs/" + jobID)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var jv struct {
			State   string    `json:"state"`
			Queued  time.Time `json:"queued_at"`
			Started time.Time `json:"started_at"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
			return 0, err
		}
		if jv.State != "done" || jv.Started.IsZero() {
			return 0, fmt.Errorf("job %s not done: %s", jobID, jv.State)
		}
		return jv.Started.Sub(jv.Queued), nil
	}
	collect := func(ids []string) ([]time.Duration, error) {
		out := make([]time.Duration, 0, len(ids))
		for _, id := range ids {
			w, err := queueWait(id)
			if err != nil {
				return nil, err
			}
			out = append(out, w)
		}
		return out, nil
	}
	heavyWaits, err := collect(heavyJobs)
	if err != nil {
		return Report{}, err
	}
	lightWaits, err := collect(lightJobs)
	if err != nil {
		return Report{}, err
	}

	mean := time.Duration(svc.Stats().MeanJobSeconds * float64(time.Second))
	fairShare := time.Duration(float64(cfg.JobsPerTenant*cfg.Tenants) *
		float64(mean) / float64(cfg.Workers))
	rep := Report{
		Tenants:       cfg.Tenants,
		JobsSubmitted: totalJobs,
		Workers:       cfg.Workers,
		Wall:          wall,
		MeanJob:       mean,
		FairShare:     fairShare,
		LightP99Wait:  p99(lightWaits),
		HeavyP99Wait:  p99(heavyWaits),
		LightMaxWait:  maxOf(lightWaits),
	}
	for _, o := range outcomes {
		if o.err != nil {
			return rep, fmt.Errorf("sse stream: %w", o.err)
		}
		rep.SSEEvents += o.events
		if o.completed {
			rep.SSECompleted++
		}
	}

	if rep.SSECompleted != len(watch) {
		return rep, fmt.Errorf("sse: %d/%d streams reached a complete event", rep.SSECompleted, len(watch))
	}
	if limit := time.Duration(cfg.FairShareRatio * float64(fairShare)); rep.LightP99Wait > limit {
		return rep, fmt.Errorf("light p99 queue wait %v exceeds %.1f× fair share %v — heavy tenant starved the light ones",
			rep.LightP99Wait, cfg.FairShareRatio, fairShare)
	}
	if limit := time.Duration(cfg.CrossRatio * float64(rep.HeavyP99Wait)); rep.LightP99Wait > limit {
		return rep, fmt.Errorf("light p99 queue wait %v exceeds %.1f× heavy p99 %v — the 10× backlog did not finish last",
			rep.LightP99Wait, cfg.CrossRatio, rep.HeavyP99Wait)
	}
	return rep, nil
}

// followSSE consumes one job's event stream to completion, checking
// event framing and progress monotonicity.
func followSSE(client *http.Client, base, jobID string) (o sseOutcome) {
	resp, err := client.Get(base + "/v1/jobs/" + jobID + "/events?interval=5ms")
	if err != nil {
		o.err = err
		return o
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		o.err = fmt.Errorf("events status %d for %s", resp.StatusCode, jobID)
		return o
	}
	prevDone := int64(-1)
	o.err = httpapi.ReadSSE(resp.Body, func(ev httpapi.Event) error {
		o.events++
		var jv struct {
			Job      string `json:"job"`
			State    string `json:"state"`
			Progress *struct {
				Done  int64 `json:"done_trials"`
				Total int64 `json:"total_trials"`
			} `json:"progress"`
		}
		if err := json.Unmarshal(ev.Data, &jv); err != nil {
			return err
		}
		if jv.Job != jobID {
			return fmt.Errorf("event for %s on %s's stream", jv.Job, jobID)
		}
		if jv.Progress != nil {
			if jv.Progress.Done < prevDone {
				return fmt.Errorf("progress went backwards on %s: %d after %d",
					jobID, jv.Progress.Done, prevDone)
			}
			prevDone = jv.Progress.Done
		}
		if ev.Name == "complete" {
			if jv.State != "done" {
				return fmt.Errorf("complete event with state %q", jv.State)
			}
			o.completed = true
		}
		return nil
	})
	return o
}

// sseOutcome is one followed stream's tally.
type sseOutcome struct {
	events    int
	completed bool
	err       error
}

func p99(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (99*len(sorted) + 99) / 100
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

func maxOf(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}
