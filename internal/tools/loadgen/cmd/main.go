// Command cmd runs the many-tenant fairness load generator against an
// in-process cogmimod daemon and exits non-zero if the heavy tenant
// manages to starve the light ones or an SSE stream misbehaves. Wired
// into `make loadgen-smoke` and verify.sh.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/tools/loadgen"
)

func main() {
	cfg := loadgen.Config{}
	flag.IntVar(&cfg.Tenants, "tenants", 50, "total tenants, one of which is heavy")
	flag.IntVar(&cfg.JobsPerTenant, "jobs", 4, "jobs per light tenant")
	flag.IntVar(&cfg.HeavyFactor, "heavy-factor", 10, "heavy tenant burst multiplier")
	flag.IntVar(&cfg.Workers, "workers", 8, "service worker pool size")
	flag.DurationVar(&cfg.JobDuration, "job-duration", 10*time.Millisecond, "synthetic busy time per job")
	flag.Float64Var(&cfg.FairShareRatio, "fair-ratio", 2.0, "light p99 bound as a multiple of the fair share")
	flag.Float64Var(&cfg.CrossRatio, "cross-ratio", 1.0, "light p99 bound as a multiple of heavy p99")
	flag.Parse()

	rep, err := loadgen.Run(cfg)
	fmt.Printf("loadgen: %s\n", rep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("loadgen: OK — heavy tenant could not starve the light ones")
}
