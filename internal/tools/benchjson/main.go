// Command benchjson turns `go test -bench` text output into a stable
// JSON artifact and compares two such artifacts for regressions.
//
// Record mode (default) reads benchmark output on stdin and writes a
// BENCH_<date>.json (or -o path) sorted by benchmark name:
//
//	go test -run=NONE -bench=. -benchtime=100x . | go run ./internal/tools/benchjson -o BENCH_2026-08-05.json
//
// Compare mode checks a new artifact against a baseline and exits
// non-zero when any shared benchmark's ns/op regressed by more than
// -threshold (fraction, default 0.20):
//
//	go run ./internal/tools/benchjson -compare BENCH_old.json BENCH_new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line. Metrics carries every "value unit"
// pair from the line: ns/op and the -benchmem B/op + allocs/op
// columns, plus custom b.ReportMetric units such as MB/s or relerr.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// File is the artifact schema.
type File struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("o", "", "output path (default BENCH_<date>.json)")
		compare   = flag.Bool("compare", false, "compare two artifacts: benchjson -compare OLD.json NEW.json")
		threshold = flag.Float64("threshold", 0.20, "max allowed ns/op regression as a fraction (compare mode)")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare OLD.json NEW.json")
			os.Exit(2)
		}
		worse, err := compareFiles(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if worse {
			os.Exit(1)
		}
		return
	}

	f, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = "BENCH_" + f.Date + ".json"
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(f.Benchmarks), path)
}

// parseBench reads `go test -bench` output and collects benchmark
// lines. Lines look like:
//
//	BenchmarkCoopScheme/2x2-8  100  1318036 ns/op  0 B/op  0 allocs/op
//
// The trailing -N on the name is the GOMAXPROCS suffix and is
// stripped so artifacts from differently sized machines line up.
func parseBench(r io.Reader) (*File, error) {
	f := &File{Date: time.Now().Format("2006-01-02")}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if res, ok := parseLine(line); ok {
			f.Benchmarks = append(f.Benchmarks, res)
			continue
		}
		if v, ok := strings.CutPrefix(line, "goos:"); ok {
			_ = v // goos recorded implicitly by date; ignore
		}
		if v, ok := strings.CutPrefix(line, "go version "); ok {
			f.GoVersion = strings.TrimSpace(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	f.Benchmarks = minMerge(f.Benchmarks)
	sort.Slice(f.Benchmarks, func(i, j int) bool {
		return f.Benchmarks[i].Name < f.Benchmarks[j].Name
	})
	return f, nil
}

// minMerge collapses repeated benchmark names (a `go test -count=N`
// run) to the repetition with the lowest ns/op. The minimum is the
// standard denoiser for gating: scheduling hiccups only ever inflate a
// measurement, so the fastest repetition is the closest to the code's
// true cost. Deterministic metrics (allocs/op, B/op) are identical
// across repetitions, so taking the fastest run's whole metric set
// loses nothing.
func minMerge(in []Result) []Result {
	best := make(map[string]int, len(in))
	out := in[:0]
	for _, r := range in {
		if i, ok := best[r.Name]; ok {
			if r.Metrics["ns/op"] < out[i].Metrics["ns/op"] {
				out[i] = r
			}
			continue
		}
		best[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

// parseLine parses one benchmark result line; ok is false for any
// other output (headers, PASS, ok lines, test logs).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: stripProcs(fields[0]), Iters: iters, Metrics: map[string]float64{}}
	// Remaining fields come in "value unit" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	if _, ok := res.Metrics["ns/op"]; !ok {
		return Result{}, false
	}
	return res, true
}

// stripProcs removes the trailing -N GOMAXPROCS suffix from a
// benchmark name, leaving sub-benchmark paths intact.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// minMeasuredNs is the total measured time (iterations x ns/op) below
// which a benchmark's ns/op is too noisy to gate on: 5 ms keeps every
// substantial hot-path benchmark under the rule while exempting the
// micro-benchmarks whose whole run fits inside one scheduling hiccup.
const minMeasuredNs = 5e6

// compareFiles reports benchmarks shared by both artifacts whose
// ns/op grew by more than threshold, writing a table to w. Benchmarks
// missing from the baseline are reported as "new" and benchmarks that
// vanished from the new run as "missing"; neither fails the compare —
// only a genuine regression on a shared benchmark returns true.
//
// Allocations are gated alongside time: a benchmark the baseline
// records at 0 allocs/op fails on ANY new allocation (the hot-path
// contract is exact, not proportional), and any other shared benchmark
// fails when allocs/op grew by more than the same threshold.
//
// The ns/op rule only applies when both runs measured for at least
// minMeasuredNs in total (iters x ns/op): below that, scheduler jitter
// swamps the signal and a nanosecond-scale benchmark would flake the
// gate on every run. Such lines are tagged "short" instead of failing.
// The allocation rules have no floor — allocs/op is an exact count,
// noise-free at any duration.
func compareFiles(oldPath, newPath string, threshold float64, w io.Writer) (bool, error) {
	oldF, err := readFile(oldPath)
	if err != nil {
		return false, err
	}
	newF, err := readFile(newPath)
	if err != nil {
		return false, err
	}
	oldBy := make(map[string]Result, len(oldF.Benchmarks))
	for _, b := range oldF.Benchmarks {
		oldBy[b.Name] = b
	}
	worse := false
	seen := make(map[string]bool, len(newF.Benchmarks))
	for _, nb := range newF.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "new       %-50s %12.0f ns/op\n", nb.Name, nb.Metrics["ns/op"])
			continue
		}
		oldNs, newNs := ob.Metrics["ns/op"], nb.Metrics["ns/op"]
		if oldNs <= 0 {
			continue
		}
		delta := (newNs - oldNs) / oldNs
		measured := float64(ob.Iters)*oldNs >= minMeasuredNs &&
			float64(nb.Iters)*newNs >= minMeasuredNs
		tag := "ok"
		if delta > threshold {
			if measured {
				tag = "REGRESS"
				worse = true
			} else {
				tag = "short"
			}
		}
		oldAl, haveOldAl := ob.Metrics["allocs/op"]
		newAl, haveNewAl := nb.Metrics["allocs/op"]
		haveAl := haveOldAl && haveNewAl
		if haveAl && ((oldAl < 1 && newAl >= 1) ||
			(oldAl >= 1 && (newAl-oldAl)/oldAl > threshold)) {
			tag = "ALLOCS"
			worse = true
		}
		fmt.Fprintf(w, "%-9s %-50s %12.0f -> %12.0f ns/op (%+.1f%%)",
			tag, nb.Name, oldNs, newNs, 100*delta)
		if haveAl {
			fmt.Fprintf(w, "  %6.0f -> %6.0f allocs/op", oldAl, newAl)
		}
		fmt.Fprintln(w)
	}
	for _, ob := range oldF.Benchmarks {
		if !seen[ob.Name] {
			fmt.Fprintf(w, "missing   %-50s (in baseline, not in new run)\n", ob.Name)
		}
	}
	if worse {
		fmt.Fprintf(w, "benchjson: regression detected (ns/op above %.0f%%, new allocs on a 0-alloc benchmark, or allocs/op above %.0f%%)\n",
			100*threshold, 100*threshold)
	}
	return worse, nil
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}
