package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: some CPU
BenchmarkCoopScheme/2x2-8         	     100	   1318036 ns/op	 569.00 MB/s	       0 B/op	       0 allocs/op
BenchmarkFig7-8                   	     100	    194624 ns/op	      16 allocs/op
BenchmarkClustering/greedy_n=24   	     100	     51234 ns/op	    4096 B/op	      12 allocs/op
--- BENCH: BenchmarkNoise
    bench_test.go:10: noisy log line
BenchmarkRelErr-8                 	      50	    900000 ns/op	         0.00310 relerr
PASS
ok  	repro	1.234s
`

func TestParseBench(t *testing.T) {
	f, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	byName := map[string]Result{}
	for _, b := range f.Benchmarks {
		byName[b.Name] = b
	}
	cs, ok := byName["BenchmarkCoopScheme/2x2"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %+v", f.Benchmarks)
	}
	if cs.Iters != 100 || cs.Metrics["ns/op"] != 1318036 || cs.Metrics["allocs/op"] != 0 || cs.Metrics["MB/s"] != 569 {
		t.Errorf("bad metrics: %+v", cs)
	}
	// Sub-benchmark with n=24 in the name must keep its full path.
	if _, ok := byName["BenchmarkClustering/greedy_n=24"]; !ok {
		t.Errorf("sub-benchmark name mangled: %+v", f.Benchmarks)
	}
	if re := byName["BenchmarkRelErr"]; re.Metrics["relerr"] != 0.0031 {
		t.Errorf("custom metric lost: %+v", re)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	repro	1.2s",
		"Benchmark only-a-name",
		"BenchmarkX 12 nounit",
		"    bench_test.go:10: BenchmarkLooking 100 5 ns/op", // indented log
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
	if _, ok := parseLine("BenchmarkX-4 12 5.0 widgets"); ok {
		t.Error("accepted line without ns/op")
	}
}

func TestCompareFiles(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	write := func(path, body string) {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(oldP, `{"date":"2026-01-01","benchmarks":[
		{"name":"BenchmarkA","iters":100000,"metrics":{"ns/op":1000}},
		{"name":"BenchmarkB","iters":100000,"metrics":{"ns/op":1000}}]}`)

	// Within threshold: 10% growth on A, B unchanged.
	write(newP, `{"date":"2026-01-02","benchmarks":[
		{"name":"BenchmarkA","iters":100000,"metrics":{"ns/op":1100}},
		{"name":"BenchmarkB","iters":100000,"metrics":{"ns/op":1000}},
		{"name":"BenchmarkNew","iters":100,"metrics":{"ns/op":5}}]}`)
	var sb strings.Builder
	worse, err := compareFiles(oldP, newP, 0.20, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if worse {
		t.Errorf("10%% growth flagged as regression:\n%s", sb.String())
	}
	// A benchmark the baseline lacks is informational, never a failure.
	if !strings.Contains(sb.String(), "new       BenchmarkNew") {
		t.Errorf("baseline-missing benchmark not reported as new:\n%s", sb.String())
	}

	// Over threshold: 50% growth on B; A vanished from the new run.
	write(newP, `{"date":"2026-01-02","benchmarks":[
		{"name":"BenchmarkB","iters":100000,"metrics":{"ns/op":1500}}]}`)
	sb.Reset()
	worse, err = compareFiles(oldP, newP, 0.20, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !worse {
		t.Errorf("50%% growth not flagged:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESS") {
		t.Errorf("missing REGRESS tag:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "missing   BenchmarkA") {
		t.Errorf("benchmark dropped from the new run not reported:\n%s", sb.String())
	}
}

// TestCompareOnlyNewAndMissingSucceeds pins the exit contract when the
// two artifacts share nothing: lots of churn, zero regressions, so the
// compare must succeed.
func TestCompareOnlyNewAndMissingSucceeds(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldP, []byte(`{"date":"2026-01-01","benchmarks":[
		{"name":"BenchmarkGone","iters":100,"metrics":{"ns/op":1000}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newP, []byte(`{"date":"2026-01-02","benchmarks":[
		{"name":"BenchmarkFresh","iters":100,"metrics":{"ns/op":9000}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	worse, err := compareFiles(oldP, newP, 0.20, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if worse {
		t.Errorf("disjoint artifacts reported as regression:\n%s", sb.String())
	}
	for _, want := range []string{"new       BenchmarkFresh", "missing   BenchmarkGone"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q:\n%s", want, sb.String())
		}
	}
}

// TestCompareAllocGate pins the allocation rules: a 0-alloc baseline
// fails on any new allocation, a nonzero baseline tolerates growth up
// to the threshold and fails past it, and shrinking allocs never fails.
func TestCompareAllocGate(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	write := func(path, body string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(oldP, `{"date":"2026-01-01","benchmarks":[
		{"name":"BenchmarkZero","iters":100,"metrics":{"ns/op":1000,"allocs/op":0}},
		{"name":"BenchmarkSome","iters":100,"metrics":{"ns/op":1000,"allocs/op":100}}]}`)

	// One alloc appears on the 0-alloc benchmark: fail even though ns/op
	// is flat and the proportional rule could never trip.
	write(newP, `{"date":"2026-01-02","benchmarks":[
		{"name":"BenchmarkZero","iters":100,"metrics":{"ns/op":1000,"allocs/op":1}},
		{"name":"BenchmarkSome","iters":100,"metrics":{"ns/op":1000,"allocs/op":100}}]}`)
	var sb strings.Builder
	worse, err := compareFiles(oldP, newP, 0.20, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !worse {
		t.Errorf("new alloc on 0-alloc benchmark not flagged:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "ALLOCS") {
		t.Errorf("missing ALLOCS tag:\n%s", sb.String())
	}

	// 15% alloc growth on the nonzero benchmark: within threshold.
	write(newP, `{"date":"2026-01-02","benchmarks":[
		{"name":"BenchmarkZero","iters":100,"metrics":{"ns/op":1000,"allocs/op":0}},
		{"name":"BenchmarkSome","iters":100,"metrics":{"ns/op":1000,"allocs/op":115}}]}`)
	sb.Reset()
	worse, err = compareFiles(oldP, newP, 0.20, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if worse {
		t.Errorf("15%% alloc growth flagged:\n%s", sb.String())
	}

	// 50% alloc growth: over threshold.
	write(newP, `{"date":"2026-01-02","benchmarks":[
		{"name":"BenchmarkZero","iters":100,"metrics":{"ns/op":1000,"allocs/op":0}},
		{"name":"BenchmarkSome","iters":100,"metrics":{"ns/op":1000,"allocs/op":150}}]}`)
	sb.Reset()
	worse, err = compareFiles(oldP, newP, 0.20, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !worse {
		t.Errorf("50%% alloc growth not flagged:\n%s", sb.String())
	}

	// Allocations collapsing (the point of an optimisation PR) passes.
	write(newP, `{"date":"2026-01-02","benchmarks":[
		{"name":"BenchmarkZero","iters":100,"metrics":{"ns/op":1000,"allocs/op":0}},
		{"name":"BenchmarkSome","iters":100,"metrics":{"ns/op":1000,"allocs/op":3}}]}`)
	sb.Reset()
	worse, err = compareFiles(oldP, newP, 0.20, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if worse {
		t.Errorf("alloc collapse flagged as regression:\n%s", sb.String())
	}
}

// TestParseBenchMinMerge pins the -count=N handling: repeated names
// collapse to the fastest repetition, carrying that run's full metric
// set.
func TestParseBenchMinMerge(t *testing.T) {
	in := `goos: linux
BenchmarkHot-8   100   1500 ns/op   64 B/op   2 allocs/op
BenchmarkCold-8  100   9000 ns/op
BenchmarkHot-8   100   1200 ns/op   64 B/op   2 allocs/op
BenchmarkHot-8   100   1900 ns/op   64 B/op   2 allocs/op
PASS
`
	f, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	byName := map[string]Result{}
	for _, b := range f.Benchmarks {
		byName[b.Name] = b
	}
	if got := byName["BenchmarkHot"].Metrics["ns/op"]; got != 1200 {
		t.Errorf("BenchmarkHot ns/op = %v, want the 1200 minimum", got)
	}
	if got := byName["BenchmarkHot"].Metrics["allocs/op"]; got != 2 {
		t.Errorf("BenchmarkHot allocs/op = %v, want 2", got)
	}
	if got := byName["BenchmarkCold"].Metrics["ns/op"]; got != 9000 {
		t.Errorf("BenchmarkCold ns/op = %v, want 9000", got)
	}
}

// TestCompareShortBenchmarkFloor pins the noise floor: a sub-quantum
// benchmark's ns/op swing is tagged "short" and never fails the gate,
// but its exact allocation contract still does.
func TestCompareShortBenchmarkFloor(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	write := func(path, body string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// 100 iters x 50 ns = 5 us measured: far below the 5 ms floor.
	write(oldP, `{"date":"2026-01-01","benchmarks":[
		{"name":"BenchmarkTiny","iters":100,"metrics":{"ns/op":50,"allocs/op":0}}]}`)
	write(newP, `{"date":"2026-01-02","benchmarks":[
		{"name":"BenchmarkTiny","iters":100,"metrics":{"ns/op":100,"allocs/op":0}}]}`)
	var sb strings.Builder
	worse, err := compareFiles(oldP, newP, 0.20, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if worse {
		t.Errorf("sub-quantum ns/op swing failed the gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "short") {
		t.Errorf("noisy micro-benchmark not tagged short:\n%s", sb.String())
	}

	// The same tiny benchmark gaining an allocation still fails.
	write(newP, `{"date":"2026-01-02","benchmarks":[
		{"name":"BenchmarkTiny","iters":100,"metrics":{"ns/op":50,"allocs/op":1}}]}`)
	sb.Reset()
	worse, err = compareFiles(oldP, newP, 0.20, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !worse {
		t.Errorf("alloc gain on a short benchmark not flagged:\n%s", sb.String())
	}

	// Above the floor (1e7 iters x 50 ns = 0.5 s) the same swing fails.
	write(oldP, `{"date":"2026-01-01","benchmarks":[
		{"name":"BenchmarkTiny","iters":10000000,"metrics":{"ns/op":50,"allocs/op":0}}]}`)
	write(newP, `{"date":"2026-01-02","benchmarks":[
		{"name":"BenchmarkTiny","iters":10000000,"metrics":{"ns/op":100,"allocs/op":0}}]}`)
	sb.Reset()
	worse, err = compareFiles(oldP, newP, 0.20, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !worse {
		t.Errorf("measured 2x regression not flagged:\n%s", sb.String())
	}
}
