package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: some CPU
BenchmarkCoopScheme/2x2-8         	     100	   1318036 ns/op	 569.00 MB/s	       0 B/op	       0 allocs/op
BenchmarkFig7-8                   	     100	    194624 ns/op	      16 allocs/op
BenchmarkClustering/greedy_n=24   	     100	     51234 ns/op	    4096 B/op	      12 allocs/op
--- BENCH: BenchmarkNoise
    bench_test.go:10: noisy log line
BenchmarkRelErr-8                 	      50	    900000 ns/op	         0.00310 relerr
PASS
ok  	repro	1.234s
`

func TestParseBench(t *testing.T) {
	f, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	byName := map[string]Result{}
	for _, b := range f.Benchmarks {
		byName[b.Name] = b
	}
	cs, ok := byName["BenchmarkCoopScheme/2x2"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %+v", f.Benchmarks)
	}
	if cs.Iters != 100 || cs.Metrics["ns/op"] != 1318036 || cs.Metrics["allocs/op"] != 0 || cs.Metrics["MB/s"] != 569 {
		t.Errorf("bad metrics: %+v", cs)
	}
	// Sub-benchmark with n=24 in the name must keep its full path.
	if _, ok := byName["BenchmarkClustering/greedy_n=24"]; !ok {
		t.Errorf("sub-benchmark name mangled: %+v", f.Benchmarks)
	}
	if re := byName["BenchmarkRelErr"]; re.Metrics["relerr"] != 0.0031 {
		t.Errorf("custom metric lost: %+v", re)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	repro	1.2s",
		"Benchmark only-a-name",
		"BenchmarkX 12 nounit",
		"    bench_test.go:10: BenchmarkLooking 100 5 ns/op", // indented log
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
	if _, ok := parseLine("BenchmarkX-4 12 5.0 widgets"); ok {
		t.Error("accepted line without ns/op")
	}
}

func TestCompareFiles(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	write := func(path, body string) {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(oldP, `{"date":"2026-01-01","benchmarks":[
		{"name":"BenchmarkA","iters":100,"metrics":{"ns/op":1000}},
		{"name":"BenchmarkB","iters":100,"metrics":{"ns/op":1000}}]}`)

	// Within threshold: 10% growth on A, B unchanged.
	write(newP, `{"date":"2026-01-02","benchmarks":[
		{"name":"BenchmarkA","iters":100,"metrics":{"ns/op":1100}},
		{"name":"BenchmarkB","iters":100,"metrics":{"ns/op":1000}},
		{"name":"BenchmarkNew","iters":100,"metrics":{"ns/op":5}}]}`)
	var sb strings.Builder
	worse, err := compareFiles(oldP, newP, 0.20, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if worse {
		t.Errorf("10%% growth flagged as regression:\n%s", sb.String())
	}
	// A benchmark the baseline lacks is informational, never a failure.
	if !strings.Contains(sb.String(), "new       BenchmarkNew") {
		t.Errorf("baseline-missing benchmark not reported as new:\n%s", sb.String())
	}

	// Over threshold: 50% growth on B; A vanished from the new run.
	write(newP, `{"date":"2026-01-02","benchmarks":[
		{"name":"BenchmarkB","iters":100,"metrics":{"ns/op":1500}}]}`)
	sb.Reset()
	worse, err = compareFiles(oldP, newP, 0.20, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !worse {
		t.Errorf("50%% growth not flagged:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESS") {
		t.Errorf("missing REGRESS tag:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "missing   BenchmarkA") {
		t.Errorf("benchmark dropped from the new run not reported:\n%s", sb.String())
	}
}

// TestCompareOnlyNewAndMissingSucceeds pins the exit contract when the
// two artifacts share nothing: lots of churn, zero regressions, so the
// compare must succeed.
func TestCompareOnlyNewAndMissingSucceeds(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldP, []byte(`{"date":"2026-01-01","benchmarks":[
		{"name":"BenchmarkGone","iters":100,"metrics":{"ns/op":1000}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newP, []byte(`{"date":"2026-01-02","benchmarks":[
		{"name":"BenchmarkFresh","iters":100,"metrics":{"ns/op":9000}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	worse, err := compareFiles(oldP, newP, 0.20, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if worse {
		t.Errorf("disjoint artifacts reported as regression:\n%s", sb.String())
	}
	for _, want := range []string{"new       BenchmarkFresh", "missing   BenchmarkGone"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q:\n%s", want, sb.String())
		}
	}
}
