// Command campaignsmoke is the end-to-end crash-safety check of the
// campaign subsystem: it runs a checkpointing Monte-Carlo campaign in a
// child process, SIGKILLs the child mid-experiment (no graceful
// shutdown, no deferred cleanup), resumes the campaign from its durable
// checkpoints, and verifies the resumed report is byte-identical to an
// uninterrupted serial run. Run from the repo root:
//
//	go run ./internal/tools/campaignsmoke
//	make campaign-smoke
//
// Exit status 0 means the resumed campaign reproduced the golden report
// exactly and actually replayed checkpointed chunks; anything else is a
// durability or determinism bug.
package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/sim"
	"repro/internal/store"
)

// childEnv tells a re-executed campaignsmoke process to act as the
// crash victim: run the campaign against this store dir until killed.
const childEnv = "CAMPAIGNSMOKE_CHILD_DIR"

// smokeSpec is sized so the kill lands mid-experiment: 40 chunks with a
// checkpoint after every one gives a wide window where some — but not
// all — progress is durable.
func smokeSpec() campaign.Spec {
	return campaign.Spec{
		Name:             "campaign-smoke",
		CheckpointChunks: 1,
		Experiments: []campaign.Experiment{{
			Kernel: "coop.ber",
			Seed:   7,
			Trials: 40 * sim.ChunkSize,
			KernelParams: map[string]float64{
				"mt": 2, "mr": 2, "snr_db": 8, "bits": 16,
			},
		}},
	}
}

func runCampaign(dir string, workers int) (string, campaign.RunStats, error) {
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		return "", campaign.RunStats{}, err
	}
	defer st.Close()
	runner := campaign.Runner{
		Store:   st,
		Workers: workers,
		Logger:  slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn})),
	}
	report, stats, err := runner.Run(context.Background(), smokeSpec())
	return report, stats, err
}

func main() {
	if dir := os.Getenv(childEnv); dir != "" {
		// Crash victim: run until the parent kills us. Finishing first
		// would make the smoke vacuous, so flag it loudly.
		if _, _, err := runCampaign(dir, 2); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "campaignsmoke: child finished before being killed")
		os.Exit(3)
	}

	base, err := os.MkdirTemp("", "campaignsmoke")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(base)
	goldenDir := filepath.Join(base, "golden")
	crashDir := filepath.Join(base, "crash")

	// Serial golden: the same campaign, uninterrupted.
	start := time.Now()
	golden, _, err := runCampaign(goldenDir, 1)
	if err != nil {
		fatal(fmt.Errorf("golden run: %w", err))
	}
	fmt.Printf("campaignsmoke: golden run done (%v)\n", time.Since(start).Round(time.Millisecond))

	// Crash victim: same campaign in a child process over crashDir.
	child := exec.Command(os.Args[0])
	child.Env = append(os.Environ(), childEnv+"="+crashDir)
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		fatal(fmt.Errorf("starting child: %w", err))
	}
	defer child.Process.Kill()

	// Wait for at least two durable checkpoints, then SIGKILL: the kill
	// provably lands with partial progress on disk.
	indexPath := filepath.Join(crashDir, "index.log")
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("timed out waiting for the child's first checkpoints"))
		}
		data, err := os.ReadFile(indexPath)
		if err == nil && strings.Count(string(data), `"kind":"checkpoint"`) >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := child.Process.Kill(); err != nil {
		fatal(fmt.Errorf("killing child: %w", err))
	}
	child.Wait()
	fmt.Println("campaignsmoke: SIGKILLed child mid-experiment with checkpoints on disk")

	// Resume in this process and demand byte-identical output plus
	// proof that checkpointed chunks were actually replayed.
	resumed, stats, err := runCampaign(crashDir, 4)
	if err != nil {
		fatal(fmt.Errorf("resumed run: %w", err))
	}
	if resumed != golden {
		fmt.Fprintf(os.Stderr, "campaignsmoke: FAIL — resumed report differs from serial golden\n--- got ---\n%s--- want ---\n%s", resumed, golden)
		os.Exit(1)
	}
	if stats.ChunksResumed == 0 {
		fatal(fmt.Errorf("resume replayed no checkpointed chunks — the kill landed before any durable progress"))
	}
	fmt.Printf("campaignsmoke: ok — killed mid-run, resumed %d chunks, computed %d, report matches golden byte-for-byte (%v)\n",
		stats.ChunksResumed, stats.ChunksComputed, time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaignsmoke:", err)
	os.Exit(1)
}
