// Command metricssmoke is an end-to-end smoke test for the cogmimod
// metrics surface. It builds the daemon, boots it on a free loopback
// port, runs one quick experiment so the job counters move, scrapes
// GET /metrics/prom and checks the core metric names are exposed.
// It exits non-zero with a diagnostic on any failure.
//
// Run it from the repo root (it invokes `go build ./cmd/cogmimod`):
//
//	make metrics-smoke
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// coreMetrics must all appear on /metrics/prom for the scrape to pass.
var coreMetrics = []string{
	"cogmimod_jobs_total",
	"cogmimod_queue_depth",
	"cogmimod_cache_hits_total",
	"cogmimod_job_duration_seconds",
	"cogmimod_mc_trials_total",
	"cogmimod_uptime_seconds",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metrics-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("metrics-smoke: ok")
}

func run() error {
	tmp, err := os.MkdirTemp("", "metricssmoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "cogmimod")
	build := exec.Command("go", "build", "-o", bin, "./cmd/cogmimod")
	if out, err := build.CombinedOutput(); err != nil {
		return fmt.Errorf("building cogmimod: %v\n%s", err, out)
	}

	// Reserve a loopback port, then hand it to the daemon.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	ln.Close()

	srv := exec.Command(bin, "-addr", addr, "-workers", "1", "-log-level", "warn")
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		return fmt.Errorf("starting daemon: %v", err)
	}
	defer func() {
		srv.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { srv.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			srv.Process.Kill()
			<-done
		}
	}()

	base := "http://" + addr
	if err := waitHealthy(base, 15*time.Second); err != nil {
		return err
	}

	// One quick synchronous job so jobs_total and the duration
	// histogram reflect real traffic, not just zero-initialised series.
	resp, err := http.Post(base+"/v1/experiments", "application/json",
		strings.NewReader(`{"id":"fig6a","seed":1,"quick":true,"wait":true}`))
	if err != nil {
		return fmt.Errorf("submitting seed job: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("seed job: status %d: %s", resp.StatusCode, body)
	}

	scrape, err := http.Get(base + "/metrics/prom")
	if err != nil {
		return fmt.Errorf("scraping /metrics/prom: %v", err)
	}
	defer scrape.Body.Close()
	if scrape.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics/prom: status %d", scrape.StatusCode)
	}
	raw, err := io.ReadAll(scrape.Body)
	if err != nil {
		return err
	}
	out := string(raw)

	var missing []string
	for _, name := range coreMetrics {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("scrape missing metrics %v; got:\n%s", missing, out)
	}
	if !strings.Contains(out, `cogmimod_jobs_total{status="done"} 1`) {
		return fmt.Errorf("jobs_total did not count the seed job:\n%s", out)
	}
	return nil
}

// waitHealthy polls /healthz until the daemon answers or the deadline
// passes.
func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon not healthy after %v: %v", timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
