// Command benchbatch measures the batched SoA coop engine against the
// per-block scalar oracle in one process, so the speedup ratio is
// immune to machine-load drift between runs. It drives the exact
// BenchmarkCoopScheme configurations and prints a table plus a PASS /
// FAIL line against the target ratio.
//
//	go run ./internal/tools/benchbatch [-target 2.0]
package main

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/coop"
)

func main() {
	testing.Init()
	target := flag.Float64("target", 2.0, "minimum batch-over-scalar speedup to pass")
	rounds := flag.Int("rounds", 5, "alternating measurement rounds; per-engine ns/op is the min across rounds")
	benchtime := flag.String("benchtime", "300ms", "per-round measuring time")
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "benchbatch:", err)
		os.Exit(1)
	}

	shapes := []struct {
		name   string
		mt, mr int
	}{
		{"1x1", 1, 1},
		{"2x2", 2, 2},
		{"4x4", 4, 4},
	}

	fmt.Printf("%-6s %14s %14s %9s %9s\n", "shape", "scalar ns/op", "batch ns/op", "speedup", "allocs")
	worst := 0.0
	for i, sh := range shapes {
		cfg := coop.Config{Mt: sh.mt, Mr: sh.mr, B: 1, SNRPerBit: 10, Bits: 6000, Seed: 1}

		// Alternate the engines and keep each one's best round: load
		// spikes hit both engines alike, and the min discards them.
		scalarNs, batchNs := int64(0), int64(0)
		var batchAllocs int64
		for round := 0; round < *rounds; round++ {
			s := run(cfg, coop.RunScalarWith)
			b := run(cfg, coop.RunWith)
			if round == 0 || s.NsPerOp() < scalarNs {
				scalarNs = s.NsPerOp()
			}
			if round == 0 || b.NsPerOp() < batchNs {
				batchNs = b.NsPerOp()
			}
			batchAllocs = b.AllocsPerOp()
		}

		ratio := float64(scalarNs) / float64(batchNs)
		if i == 0 || ratio < worst {
			worst = ratio
		}
		fmt.Printf("%-6s %14d %14d %8.2fx %9d\n",
			sh.name, scalarNs, batchNs, ratio, batchAllocs)
		if batchAllocs != 0 {
			fmt.Printf("FAIL: batch path allocates (%d allocs/op) on %s\n", batchAllocs, sh.name)
			os.Exit(1)
		}
	}
	if worst < *target {
		fmt.Printf("FAIL: worst speedup %.2fx below target %.2fx\n", worst, *target)
		os.Exit(1)
	}
	fmt.Printf("PASS: worst speedup %.2fx >= target %.2fx\n", worst, *target)
}

type engine func(*coop.Workspace, coop.Config) (coop.Result, error)

func run(cfg coop.Config, fn engine) testing.BenchmarkResult {
	ws := coop.NewWorkspace()
	// Warm the workspace so steady-state allocation is measured.
	if _, err := fn(ws, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "benchbatch:", err)
		os.Exit(1)
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fn(ws, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
