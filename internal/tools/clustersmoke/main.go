// Command clustersmoke is the end-to-end check of the distributed shard
// executor: it runs the ext-coopber experiment through a loopback
// coordinator with three workers, kills one worker mid-run to force
// shard reassignment, and verifies the merged report is byte-identical
// to the serial golden snapshot. Run from the repo root:
//
//	go run ./internal/tools/clustersmoke
//	make cluster-smoke
//
// Exit status 0 means the distributed run reproduced the golden file
// exactly despite the induced failure; anything else is a determinism
// or scheduling bug.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	golden := flag.String("golden",
		filepath.Join("internal", "experiments", "testdata", "golden", "ext-coopber_quick_seed1.txt"),
		"serial golden report to compare against")
	flag.Parse()

	want, err := os.ReadFile(*golden)
	if err != nil {
		fatal(fmt.Errorf("reading golden (run from the repo root): %w", err))
	}

	lb := cluster.NewLoopback("w1", "w2", "w3")
	lb.Node("w1").SetDelay(time.Millisecond) // widen the mid-run kill window
	reg := cluster.NewRegistry(lb, "w1", "w2", "w3")
	co := cluster.NewCoordinator(lb, reg, cluster.Config{
		Shards:    3,
		RetryBase: time.Millisecond,
		RetryMax:  10 * time.Millisecond,
	})

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(3 * time.Millisecond)
		lb.Node("w1").Kill()
		fmt.Println("clustersmoke: killed worker w1 mid-run")
	}()

	ctx := sim.WithExecutor(context.Background(), co)
	start := time.Now()
	rep, err := experiments.RunCtx(ctx, "ext-coopber", experiments.Options{Seed: 1, Quick: true, Workers: 2})
	if err != nil {
		fatal(fmt.Errorf("distributed ext-coopber: %w", err))
	}
	<-killed

	got := rep.String()
	if got != string(want) {
		fmt.Fprintf(os.Stderr, "clustersmoke: FAIL — distributed report differs from serial golden\n--- got ---\n%s--- want ---\n%s", got, want)
		os.Exit(1)
	}
	surviving := 0
	for _, w := range []string{"w2", "w3"} {
		if lb.Node(w).Shards() > 0 {
			surviving++
		}
	}
	if surviving == 0 {
		fatal(fmt.Errorf("no surviving worker computed a shard — the fan-out never happened"))
	}
	fmt.Printf("clustersmoke: ok — 3 workers, 1 killed, report matches golden byte-for-byte (w1=%d w2=%d w3=%d shards, %v)\n",
		lb.Node("w1").Shards(), lb.Node("w2").Shards(), lb.Node("w3").Shards(), time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clustersmoke:", err)
	os.Exit(1)
}
