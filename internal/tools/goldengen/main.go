// Command goldengen regenerates the golden report snapshots under
// internal/experiments/testdata/golden. The determinism tests compare
// live driver output against these files, so they must only be
// regenerated when a report's content is intentionally changed —
// refactors of the simulation kernels must reproduce them bit for bit.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	dir := filepath.Join("internal", "experiments", "testdata", "golden")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, id := range experiments.IDs() {
		rep, err := experiments.Run(id, experiments.Options{Seed: 1, Quick: true})
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		path := filepath.Join(dir, id+"_quick_seed1.txt")
		if err := os.WriteFile(path, []byte(rep.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
