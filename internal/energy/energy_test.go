package energy

import (
	"math"
	"testing"

	"repro/internal/ebtable"
	"repro/internal/units"
)

func paperModel(t *testing.T, bandwidth units.Hertz) *Model {
	t.Helper()
	m, err := New(Paper(bandwidth), ebtable.Analytic{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPaperConstants(t *testing.T) {
	p := Paper(40e3)
	if math.Abs(float64(p.Pct)-0.04864) > 1e-12 {
		t.Errorf("Pct = %v", p.Pct)
	}
	if math.Abs(p.Ml-1e4) > 1e-6 {
		t.Errorf("Ml = %v", p.Ml)
	}
	if math.Abs(p.Nf-10) > 1e-9 {
		t.Errorf("Nf = %v", p.Nf)
	}
	if math.Abs(p.Sigma2-3.9810717055349695e-21) > 1e-30 {
		t.Errorf("Sigma2 = %v", p.Sigma2)
	}
	if math.Abs(p.GtGr-math.Pow(10, 0.5)) > 1e-9 {
		t.Errorf("GtGr = %v", p.GtGr)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("paper constants invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := Paper(40e3)
	bad.Bandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth should fail")
	}
	bad = Paper(40e3)
	bad.PacketBits = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero packet size should fail")
	}
	bad = Paper(40e3)
	bad.N0 = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero N0 should fail")
	}
	bad = Paper(40e3)
	bad.Lambda = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative wavelength should fail")
	}
	bad = Paper(40e3)
	bad.BMax = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero BMax should fail")
	}
	if _, err := New(bad, ebtable.Analytic{}); err == nil {
		t.Error("New should propagate validation errors")
	}
}

func TestAlpha(t *testing.T) {
	// b=2: 3(2-1)/(0.35*(2+1)) = 3/1.05.
	if got, want := Alpha(2), 3.0/1.05; math.Abs(got-want) > 1e-12 {
		t.Errorf("Alpha(2) = %v, want %v", got, want)
	}
	// Monotone increasing in b: denser constellations have higher PAPR.
	prev := Alpha(1)
	for b := 2; b <= 16; b++ {
		if a := Alpha(b); a <= prev {
			t.Errorf("Alpha not increasing at b=%d", b)
		} else {
			prev = a
		}
	}
}

func TestLocalTxComponents(t *testing.T) {
	m := paperModel(t, 40e3)
	c, err := m.LocalTx(0.001, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Circuit: Pct/(b*B) + Psyn*Ttr/n = .04864/8e4 + .05*5e-6/1e4.
	wantCirc := 0.04864/8e4 + 0.05*5e-6/1e4
	if math.Abs(float64(c.Circuit)/wantCirc-1) > 1e-12 {
		t.Errorf("circuit = %v, want %v", c.Circuit, wantCirc)
	}
	// PA at d=1m: (4/3)(1+alpha)*1.5*ln(4*0.5/(2e-3))*1e5*10*sigma2.
	wantPA := 4.0 / 3 * (1 + Alpha(2)) * 1.5 * math.Log(1000) * 1e5 * 10 * m.P.Sigma2
	if math.Abs(float64(c.PA)/wantPA-1) > 1e-12 {
		t.Errorf("PA = %v, want %v", c.PA, wantPA)
	}
	// PA energy grows as d^3.5.
	c16, _ := m.LocalTx(0.001, 2, 16)
	if r := float64(c16.PA) / float64(c.PA); math.Abs(r-math.Pow(16, 3.5)) > 1e-6*math.Pow(16, 3.5) {
		t.Errorf("PA distance scaling = %v", r)
	}
	// Circuit cost is distance-independent.
	if c16.Circuit != c.Circuit {
		t.Error("circuit energy should not depend on distance")
	}
}

func TestLocalTxDegenerateBER(t *testing.T) {
	m := paperModel(t, 40e3)
	// An absurdly loose target drives the log argument below 1; PA clamps
	// to zero rather than going negative.
	c, err := m.LocalTx(0.999, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.PA < 0 {
		t.Errorf("PA went negative: %v", c.PA)
	}
}

func TestLocalRx(t *testing.T) {
	m := paperModel(t, 40e3)
	c, err := m.LocalRx(2)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0625/8e4 + 0.05*5e-6/1e4
	if math.Abs(float64(c.Total())/want-1) > 1e-12 {
		t.Errorf("LocalRx = %v, want %v", c.Total(), want)
	}
	if c.PA != 0 {
		t.Error("reception should spend no PA energy")
	}
}

func TestMIMOTxAgainstHandComputation(t *testing.T) {
	m := paperModel(t, 40e3)
	const p, b, mt, mr, d = 0.001, 2, 2, 3, 250.0
	eb, err := ebtable.Analytic{}.EbBar(p, b, mt, mr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.MIMOTx(p, b, mt, mr, d)
	if err != nil {
		t.Fatal(err)
	}
	wantPA := (1 + Alpha(b)) / 2 * eb * math.Pow(4*math.Pi*d, 2) /
		(m.P.GtGr * m.P.Lambda * m.P.Lambda) * m.P.Ml * m.P.Nf
	if math.Abs(float64(c.PA)/wantPA-1) > 1e-9 {
		t.Errorf("PA = %v, want %v", c.PA, wantPA)
	}
	wantCirc := (0.04864 + 0.05) / 8e4
	if math.Abs(float64(c.Circuit)/wantCirc-1) > 1e-12 {
		t.Errorf("circuit = %v, want %v", c.Circuit, wantCirc)
	}
}

func TestMIMORx(t *testing.T) {
	m := paperModel(t, 40e3)
	c, err := m.MIMORx(4)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.0625 + 0.05) / (4 * 40e3)
	if math.Abs(float64(c.Total())/want-1) > 1e-12 {
		t.Errorf("MIMORx = %v, want %v", c.Total(), want)
	}
}

func TestTxCostsMoreThanRx(t *testing.T) {
	// Section 6.1 leans on "transmission needs more energy than reception"
	// at long-haul distances.
	m := paperModel(t, 40e3)
	tx, _ := m.MIMOTx(0.001, 2, 2, 2, 200)
	rx, _ := m.MIMORx(2)
	if tx.Total() <= rx.Total() {
		t.Errorf("tx %v should exceed rx %v at 200 m", tx.Total(), rx.Total())
	}
}

func TestMIMOTxDistanceRoundTrip(t *testing.T) {
	m := paperModel(t, 40e3)
	for _, d := range []float64{50, 150, 350} {
		c, err := m.MIMOTx(0.0005, 2, 3, 1, d)
		if err != nil {
			t.Fatal(err)
		}
		back, err := m.MIMOTxDistance(c.Total(), 0.0005, 2, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(back-d) > 1e-6*d {
			t.Errorf("round trip %v -> %v", d, back)
		}
	}
}

func TestMIMOTxDistanceInsufficientBudget(t *testing.T) {
	m := paperModel(t, 40e3)
	// A budget below the circuit floor cannot reach any distance.
	d, err := m.MIMOTxDistance(1e-12, 0.001, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("distance = %v, want 0", d)
	}
}

func TestDomainErrors(t *testing.T) {
	m := paperModel(t, 40e3)
	if _, err := m.LocalTx(0, 2, 1); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := m.LocalTx(0.001, 0, 1); err == nil {
		t.Error("b=0 should fail")
	}
	if _, err := m.LocalTx(0.001, 17, 1); err == nil {
		t.Error("b=17 should fail")
	}
	if _, err := m.MIMOTx(0.001, 2, 0, 1, 100); err == nil {
		t.Error("mt=0 should fail")
	}
	if _, err := m.MIMORx(0); err == nil {
		t.Error("b=0 should fail")
	}
	if _, err := m.MIMOTxDistance(1, 0.001, 2, -1, 1); err == nil {
		t.Error("negative mt should fail")
	}
	// Unreachable (p, b) propagates the ebtable error.
	if _, err := m.MIMOTx(0.2, 16, 1, 1, 100); err == nil {
		t.Error("unreachable target should fail")
	}
}

func TestOptimalMIMOB(t *testing.T) {
	m := paperModel(t, 40e3)
	res, err := m.OptimalMIMOB(0.001, 2, 2, 250, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive check that nothing beats the winner.
	for b := 1; b <= 16; b++ {
		c, err := m.MIMOTx(0.001, b, 2, 2, 250)
		if err != nil {
			continue
		}
		if c.Total() < res.Cost.Total() {
			t.Errorf("b=%d beats declared optimum b=%d", b, res.B)
		}
	}
	// PA-only objective may pick a different b (underlay's criterion).
	paOnly, err := m.OptimalMIMOB(0.001, 2, 2, 250, func(c Cost) float64 { return float64(c.PA) })
	if err != nil {
		t.Fatal(err)
	}
	for b := 1; b <= 16; b++ {
		c, err := m.MIMOTx(0.001, b, 2, 2, 250)
		if err != nil {
			continue
		}
		if c.PA < paOnly.Cost.PA {
			t.Errorf("b=%d beats PA-only optimum b=%d", b, paOnly.B)
		}
	}
}

func TestOptimalLocalB(t *testing.T) {
	m := paperModel(t, 40e3)
	res, err := m.OptimalLocalB(0.001, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for b := 1; b <= 16; b++ {
		c, err := m.LocalTx(0.001, b, 1)
		if err != nil {
			continue
		}
		if c.Total() < res.Cost.Total() {
			t.Errorf("b=%d beats declared optimum b=%d", b, res.B)
		}
	}
	// At short range the circuit term dominates, so the optimum is a
	// dense constellation (less time on air).
	if res.B < 4 {
		t.Errorf("short-range local optimum b=%d suspiciously small", res.B)
	}
}

func TestBandwidthScalesCircuitEnergy(t *testing.T) {
	m20 := paperModel(t, 20e3)
	m40 := paperModel(t, 40e3)
	c20, _ := m20.MIMORx(2)
	c40, _ := m40.MIMORx(2)
	if math.Abs(float64(c20.Total())/float64(c40.Total())-2) > 1e-9 {
		t.Errorf("halving bandwidth should double circuit energy per bit: %v vs %v", c20.Total(), c40.Total())
	}
}
