// Package energy implements the per-bit energy model of Section 2.3
// (equations 1–4): the local/intra-cluster transmission and reception
// costs, and the long-haul cooperative MIMO link costs parameterised by
// the ebtable quantity ēb(p, b, mt, mr). It also provides the
// constellation-size optimisation ("determine constellation size b which
// minimizes ēb") and the distance inversions used by the overlay
// analysis.
package energy

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/units"
)

// Params carries the system constants of Section 2.3. All derived
// quantities are linear/SI; the constructor performs the dB conversions.
type Params struct {
	// Pct, Pcr, Psyn are the circuit power draws for transmission,
	// reception and synchronisation, in watts.
	Pct, Pcr, Psyn units.Watt
	// G1 is the local path-loss gain factor at one metre (linear; the
	// paper prints "10mw", treated as the factor 10 — see DESIGN.md).
	G1 float64
	// Kappa is the local path-loss exponent (3.5).
	Kappa float64
	// Ml is the link margin (linear; 40 dB).
	Ml float64
	// Nf is the receiver noise figure (linear; 10 dB).
	Nf float64
	// Sigma2 is the AWGN noise spectral density at the local receiver,
	// in W/Hz (-174 dBm/Hz).
	Sigma2 float64
	// N0 is the long-haul noise spectral density in W/Hz (-171 dBm/Hz).
	N0 float64
	// GtGr is the combined antenna gain (linear; 5 dBi).
	GtGr float64
	// Lambda is the carrier wavelength in metres (0.1199 m ~ 2.5 GHz).
	Lambda float64
	// Ttr is the transient/startup duration of the synchroniser (5 us).
	Ttr units.Second
	// Bandwidth is the system bandwidth B in Hz.
	Bandwidth units.Hertz
	// PacketBits is the information size n per transmission, in bits.
	PacketBits int
	// BMax is the largest constellation size considered (paper: 16).
	BMax int
}

// Paper returns the constant set of Section 2.3 with the given bandwidth.
// The paper sweeps B from 10 kHz to 100 kHz.
func Paper(bandwidth units.Hertz) Params {
	return Params{
		Pct:        units.MilliWatt(48.64),
		Pcr:        units.MilliWatt(62.5),
		Psyn:       units.MilliWatt(50),
		G1:         10,
		Kappa:      3.5,
		Ml:         units.DB(40).Linear(),
		Nf:         units.DB(10).Linear(),
		Sigma2:     units.DBmPerHzToWattsPerHz(-174),
		N0:         units.DBmPerHzToWattsPerHz(-171),
		GtGr:       units.DB(5).Linear(),
		Lambda:     0.1199,
		Ttr:        5e-6,
		Bandwidth:  bandwidth,
		PacketBits: 10000,
		BMax:       16,
	}
}

// Validate reports the first nonsensical constant, if any.
func (p Params) Validate() error {
	switch {
	case p.Bandwidth <= 0:
		return fmt.Errorf("energy: bandwidth %v must be positive", p.Bandwidth)
	case p.PacketBits <= 0:
		return fmt.Errorf("energy: packet size %d must be positive", p.PacketBits)
	case p.N0 <= 0 || p.Sigma2 <= 0:
		return fmt.Errorf("energy: noise densities must be positive")
	case p.Lambda <= 0:
		return fmt.Errorf("energy: wavelength %g must be positive", p.Lambda)
	case p.BMax < 1:
		return fmt.Errorf("energy: BMax %d must be at least 1", p.BMax)
	}
	return nil
}

// Alpha is the power-amplifier inefficiency factor
// alpha = 3(sqrt(2^b)-1) / (0.35 (sqrt(2^b)+1)), implemented exactly as
// the paper prints it (it is xi/eta of Cui et al. with the -1 absorbed).
func Alpha(b int) float64 {
	s := math.Sqrt(math.Pow(2, float64(b)))
	return 3 * (s - 1) / (0.35 * (s + 1))
}

// LocalLoss returns the intra-cluster path-loss model for these params.
func (p Params) LocalLoss() channel.LocalPathLoss {
	return channel.LocalPathLoss{G1: p.G1, Kappa: p.Kappa, Ml: p.Ml}
}

// LongHaulLoss returns the long-haul path-loss model. Nf is folded in,
// matching eq. (3)'s (4 pi D)^2 / (Gt Gr lambda^2) * Ml * Nf factor.
func (p Params) LongHaulLoss() channel.LongHaulPathLoss {
	return channel.LongHaulPathLoss{GtGr: p.GtGr, Lambda: p.Lambda, Ml: p.Ml, Nf: p.Nf}
}
