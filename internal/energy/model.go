package energy

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// EbProvider supplies ēb(p, b, mt, mr): the required per-bit receive
// energy so that an mt-by-mr STBC link over flat Rayleigh fading hits
// average BER p with constellation size b (the implicit solution of the
// paper's eqs. 5–6). Implementations live in internal/ebtable.
type EbProvider interface {
	EbBar(p float64, b, mt, mr int) (float64, error)
}

// Cost is a per-bit energy broken into its power-amplifier and circuit
// components. The underlay analysis constrains PA alone (Section 4); all
// other analyses use Total.
type Cost struct {
	PA      units.JoulePerBit
	Circuit units.JoulePerBit
}

// Total returns PA + Circuit.
func (c Cost) Total() units.JoulePerBit { return c.PA + c.Circuit }

// Model evaluates the four energy equations for one constant set.
type Model struct {
	P  Params
	Eb EbProvider
}

// New constructs a model, validating the constants once up front.
func New(p Params, eb EbProvider) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{P: p, Eb: eb}, nil
}

// LocalTx evaluates eq. (1): the per-bit cost of an intra-cluster
// transmission over distance d at target BER p with constellation b.
//
//	e_PA^Lt = (4/3)(1+alpha) ((2^b - 1)/b) ln(4(1 - 2^(-b/2))/(b p)) Gd Nf sigma^2
//	e_C^Lt  = Pct/(b B) + Psyn Ttr / n
func (m *Model) LocalTx(p float64, b int, d float64) (Cost, error) {
	if err := checkPB(p, b, m.P.BMax); err != nil {
		return Cost{}, err
	}
	arg := 4 * (1 - math.Pow(2, -float64(b)/2)) / (float64(b) * p)
	if arg <= 1 {
		// The link-budget log-term degenerates: the BER target is so loose
		// the formula's domain is exceeded. Clamp to zero PA energy.
		arg = 1
	}
	gd := m.P.LocalLoss().Gain(d)
	pa := 4.0 / 3 * (1 + Alpha(b)) * (math.Pow(2, float64(b)) - 1) / float64(b) *
		math.Log(arg) * gd * m.P.Nf * m.P.Sigma2
	circ := float64(m.P.Pct)/(float64(b)*float64(m.P.Bandwidth)) +
		float64(m.P.Psyn)*float64(m.P.Ttr)/float64(m.P.PacketBits)
	return Cost{PA: units.JoulePerBit(pa), Circuit: units.JoulePerBit(circ)}, nil
}

// LocalRx evaluates eq. (2): e_Lr = Pcr/(b B) + Psyn Ttr / n. Reception
// spends only circuit energy.
func (m *Model) LocalRx(b int) (Cost, error) {
	if err := checkPB(0.5, b, m.P.BMax); err != nil {
		return Cost{}, err
	}
	circ := float64(m.P.Pcr)/(float64(b)*float64(m.P.Bandwidth)) +
		float64(m.P.Psyn)*float64(m.P.Ttr)/float64(m.P.PacketBits)
	return Cost{Circuit: units.JoulePerBit(circ)}, nil
}

// MIMOTx evaluates eq. (3): the per-node, per-bit cost of transmitting on
// a long-haul mt-by-mr cooperative link of length D metres.
//
//	e_PA^MIMOt = (1/mt)(1+alpha) ēb(p,b,mt,mr) (4 pi D)^2/(Gt Gr lambda^2) Ml Nf
//	e_C^MIMOt  = (Pct + Psyn)/(b B)
func (m *Model) MIMOTx(p float64, b, mt, mr int, d float64) (Cost, error) {
	if err := checkPB(p, b, m.P.BMax); err != nil {
		return Cost{}, err
	}
	if err := checkAntennas(mt, mr); err != nil {
		return Cost{}, err
	}
	eb, err := m.Eb.EbBar(p, b, mt, mr)
	if err != nil {
		return Cost{}, fmt.Errorf("energy: ēb(p=%g, b=%d, %dx%d): %w", p, b, mt, mr, err)
	}
	pa := (1 + Alpha(b)) / float64(mt) * eb * m.P.LongHaulLoss().Gain(d)
	circ := (float64(m.P.Pct) + float64(m.P.Psyn)) / (float64(b) * float64(m.P.Bandwidth))
	return Cost{PA: units.JoulePerBit(pa), Circuit: units.JoulePerBit(circ)}, nil
}

// MIMORx evaluates eq. (4): e_MIMOr = (Pcr + Psyn)/(b B), the per-node
// receive cost on a long-haul cooperative link.
func (m *Model) MIMORx(b int) (Cost, error) {
	if err := checkPB(0.5, b, m.P.BMax); err != nil {
		return Cost{}, err
	}
	circ := (float64(m.P.Pcr) + float64(m.P.Psyn)) / (float64(b) * float64(m.P.Bandwidth))
	return Cost{Circuit: units.JoulePerBit(circ)}, nil
}

// MIMOTxDistance inverts eq. (3): the longest link length D at which a
// per-node energy budget of e suffices for target BER p with
// constellation b on an mt-by-mr link. It returns 0 when the budget does
// not even cover the circuit energy.
func (m *Model) MIMOTxDistance(e units.JoulePerBit, p float64, b, mt, mr int) (float64, error) {
	if err := checkPB(p, b, m.P.BMax); err != nil {
		return 0, err
	}
	if err := checkAntennas(mt, mr); err != nil {
		return 0, err
	}
	circ := (float64(m.P.Pct) + float64(m.P.Psyn)) / (float64(b) * float64(m.P.Bandwidth))
	budget := float64(e) - circ
	if budget <= 0 {
		return 0, nil
	}
	eb, err := m.Eb.EbBar(p, b, mt, mr)
	if err != nil {
		return 0, fmt.Errorf("energy: ēb(p=%g, b=%d, %dx%d): %w", p, b, mt, mr, err)
	}
	gain := budget * float64(mt) / ((1 + Alpha(b)) * eb)
	return m.P.LongHaulLoss().DistanceForGain(gain), nil
}

// BSearch holds the outcome of a constellation-size optimisation.
type BSearch struct {
	B    int
	Cost Cost
}

// OptimalMIMOB sweeps b = 1..BMax and returns the constellation that
// minimises the chosen objective of the long-haul transmit cost
// (Algorithm 1/2 preprocessing: "determine constellation size b which
// minimizes ēb"). Unreachable (p, b) combinations are skipped; if every
// b is unreachable an error is returned.
func (m *Model) OptimalMIMOB(p float64, mt, mr int, d float64, objective func(Cost) float64) (BSearch, error) {
	if objective == nil {
		objective = func(c Cost) float64 { return float64(c.Total()) }
	}
	best := BSearch{B: -1}
	bestVal := math.Inf(1)
	var lastErr error
	for b := 1; b <= m.P.BMax; b++ {
		c, err := m.MIMOTx(p, b, mt, mr, d)
		if err != nil {
			lastErr = err
			continue
		}
		if v := objective(c); v < bestVal {
			bestVal = v
			best = BSearch{B: b, Cost: c}
		}
	}
	if best.B < 0 {
		return best, fmt.Errorf("energy: no feasible constellation for p=%g on %dx%d: %w", p, mt, mr, lastErr)
	}
	return best, nil
}

// OptimalLocalB sweeps b for the local-link cost of eq. (1).
func (m *Model) OptimalLocalB(p float64, d float64, objective func(Cost) float64) (BSearch, error) {
	if objective == nil {
		objective = func(c Cost) float64 { return float64(c.Total()) }
	}
	best := BSearch{B: -1}
	bestVal := math.Inf(1)
	for b := 1; b <= m.P.BMax; b++ {
		c, err := m.LocalTx(p, b, d)
		if err != nil {
			continue
		}
		if v := objective(c); v < bestVal {
			bestVal = v
			best = BSearch{B: b, Cost: c}
		}
	}
	if best.B < 0 {
		return best, fmt.Errorf("energy: no feasible local constellation for p=%g", p)
	}
	return best, nil
}

func checkPB(p float64, b, bmax int) error {
	if p <= 0 || p >= 1 {
		return fmt.Errorf("energy: BER target %g outside (0, 1)", p)
	}
	if b < 1 || b > bmax {
		return fmt.Errorf("energy: constellation size %d outside [1, %d]", b, bmax)
	}
	return nil
}

func checkAntennas(mt, mr int) error {
	if mt < 1 || mr < 1 {
		return fmt.Errorf("energy: antenna counts %dx%d must be positive", mt, mr)
	}
	return nil
}
