package modulation

import (
	"fmt"
	"math"
)

// LLR computes per-bit max-log log-likelihood ratios for one received
// symbol y observed as y = s + n with complex noise variance n0 (total
// across both components): llr_i > 0 favours bit 0, < 0 favours bit 1,
// matching the sign convention llr = log P(b=0|y) - log P(b=1|y).
//
// Soft outputs feed decoders and combiners that outperform the
// hard-decision path of DecideSymbol; the max-log approximation
// evaluates min-distance constellation points per hypothesis, which is
// exact for BPSK and within a fraction of a dB elsewhere.
func (s *Scheme) LLR(y complex128, n0 float64, dst []float64) error {
	if len(dst) != s.BitsPerSymbol {
		return fmt.Errorf("modulation: LLR needs %d outputs, got %d", s.BitsPerSymbol, len(dst))
	}
	if n0 <= 0 {
		return fmt.Errorf("modulation: noise variance %g must be positive", n0)
	}
	// The I and Q rails are independent Gray-coded PAM constellations;
	// compute each rail's bit LLRs separately.
	s.railLLR(real(y), s.bi, n0, dst[:s.bi])
	if s.bq > 0 {
		s.railLLR(imag(y), s.bq, n0, dst[s.bi:])
	}
	return nil
}

// railLLR computes max-log LLRs for one PAM rail carrying k bits.
func (s *Scheme) railLLR(x float64, k int, n0 float64, dst []float64) {
	l := 1 << k
	// Per-component noise variance is n0/2.
	inv := 1 / n0
	for bit := 0; bit < k; bit++ {
		best0 := math.Inf(1)
		best1 := math.Inf(1)
		for idx := 0; idx < l; idx++ {
			level := pamLevel(grayEncode(uint(idx)), l) * s.scale
			d := x - level
			metric := d * d * inv * 2 // (x-s)^2 / (n0/2)
			// Bit value at this position (MSB first, pre-Gray value).
			b := (idx >> (k - 1 - bit)) & 1
			if b == 0 {
				if metric < best0 {
					best0 = metric
				}
			} else {
				if metric < best1 {
					best1 = metric
				}
			}
		}
		dst[bit] = (best1 - best0) / 2
	}
}

// HardFromLLR converts soft values back to hard bits (1 when the LLR
// favours bit 1).
func HardFromLLR(llrs []float64, dst []byte) {
	for i, l := range llrs {
		if l < 0 {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}
