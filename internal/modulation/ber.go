package modulation

import (
	"math"

	"repro/internal/mathx"
)

// BERAWGN evaluates the paper's instantaneous BER expressions (eqs. 5–6)
// for constellation size b at per-bit SNR gammaB:
//
//	b = 1:  p = Q(sqrt(2*gammaB))
//	b >= 2: p = (4/b) * (1 - 2^(-b/2)) * Q(sqrt(3*b/(M-1) * gammaB))
//
// These are the integrands averaged over the channel in the ebtable.
func BERAWGN(b int, gammaB float64) float64 {
	if gammaB < 0 {
		gammaB = 0
	}
	if b <= 1 {
		return mathx.Q(math.Sqrt(2 * gammaB))
	}
	m := math.Pow(2, float64(b))
	pre := 4 / float64(b) * (1 - math.Pow(2, -float64(b)/2))
	return pre * mathx.Q(math.Sqrt(3*float64(b)/(m-1)*gammaB))
}

// BERRayleighBPSK is the closed-form Rayleigh-average BPSK bit error
// rate at mean per-bit SNR gbar: 0.5*(1 - sqrt(gbar/(1+gbar))). It
// cross-checks the Monte-Carlo ebtable estimator in tests.
func BERRayleighBPSK(gbar float64) float64 {
	if gbar <= 0 {
		return 0.5
	}
	return 0.5 * (1 - math.Sqrt(gbar/(1+gbar)))
}

// BERRayleighMRC is the closed-form average BER of BPSK with L-branch
// maximal-ratio combining over iid Rayleigh branches, each at mean
// per-branch SNR gbar (Proakis eq. 14.4-15). It validates the diversity
// order the STBC decoder achieves.
func BERRayleighMRC(l int, gbar float64) float64 {
	if l < 1 {
		l = 1
	}
	mu := math.Sqrt(gbar / (1 + gbar))
	p := (1 - mu) / 2
	q := (1 + mu) / 2
	sum := 0.0
	for k := 0; k < l; k++ {
		sum += binom(l-1+k, k) * math.Pow(q, float64(k))
	}
	return math.Pow(p, float64(l)) * sum
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r *= float64(n-k+i) / float64(i)
	}
	return r
}

// GMSKBERAWGN approximates GMSK (BT = 0.25) coherent-detection BER as
// Q(sqrt(2*alpha*gammaB)) with the standard degradation factor
// alpha = 0.68 relative to BPSK. The underlay testbed (Section 6.4)
// transmits with GMSK.
func GMSKBERAWGN(gammaB float64) float64 {
	const alpha = 0.68
	if gammaB < 0 {
		gammaB = 0
	}
	return mathx.Q(math.Sqrt(2 * alpha * gammaB))
}

// RequiredGammaB inverts BERAWGN: the per-bit SNR at which constellation
// b hits target BER p on AWGN. Returns +Inf when p is unreachable
// (p <= 0) and 0 when p is trivially met.
func RequiredGammaB(b int, p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	if BERAWGN(b, 0) <= p {
		return 0
	}
	// BERAWGN is continuous and strictly decreasing in gammaB.
	lo, hi := 0.0, 1.0
	for BERAWGN(b, hi) > p {
		hi *= 2
		if hi > 1e12 {
			return math.Inf(1)
		}
	}
	x, err := mathx.Bisect(func(g float64) float64 { return BERAWGN(b, g) - p }, lo, hi, 1e-12*hi)
	if err != nil {
		return math.Inf(1)
	}
	return x
}
