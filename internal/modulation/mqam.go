// Package modulation implements the constellations the paper's links use
// — BPSK (b = 1), Gray-coded rectangular/square MQAM (b = 2..16), and a
// GMSK approximation for the underlay testbed — together with the
// theoretical BER expressions of Section 2.3 (eqs. 5 and 6) that define
// the ebtable.
package modulation

import (
	"fmt"
	"math"
)

// Scheme is a memoryless constellation mapper with unit average symbol
// energy.
type Scheme struct {
	// BitsPerSymbol is the constellation size exponent b; M = 2^b.
	BitsPerSymbol int

	bi, bq int // bits on the I and Q rails
	scale  float64
	lut    *lut // per-rail batch tables, built eagerly by New
}

// New returns the constellation carrying b bits per symbol. b = 1 is
// BPSK; even b is square MQAM; odd b >= 3 is rectangular QAM with
// ceil(b/2) bits on I and floor(b/2) on Q. b outside [1, 16] errors —
// the paper sweeps exactly that range.
func New(b int) (*Scheme, error) {
	if b < 1 || b > 16 {
		return nil, fmt.Errorf("modulation: constellation size b=%d outside [1, 16]", b)
	}
	s := &Scheme{BitsPerSymbol: b}
	s.bi = (b + 1) / 2
	s.bq = b / 2
	li, lq := 1<<s.bi, 1<<s.bq
	// Per-rail mean energies for odd-integer levels {±1, ±3, ...}.
	e := float64(li*li-1) / 3
	if lq > 1 {
		e += float64(lq*lq-1) / 3
	}
	s.scale = 1 / math.Sqrt(e)
	s.lut = s.buildLUT()
	return s, nil
}

// MustNew is New for constant b known valid at compile time.
func MustNew(b int) *Scheme {
	s, err := New(b)
	if err != nil {
		panic(err)
	}
	return s
}

// M returns the constellation order 2^b.
func (s *Scheme) M() int { return 1 << s.BitsPerSymbol }

// Modulate maps bits (len must be a multiple of b) to unit-energy complex
// symbols.
func (s *Scheme) Modulate(bits []byte) ([]complex128, error) {
	return s.ModulateInto(bits, nil)
}

// ModulateInto is Modulate writing into dst (grown as needed), so block
// loops can reuse one symbol buffer.
func (s *Scheme) ModulateInto(bits []byte, dst []complex128) ([]complex128, error) {
	if len(bits)%s.BitsPerSymbol != 0 {
		return nil, fmt.Errorf("modulation: %d bits not a multiple of b=%d", len(bits), s.BitsPerSymbol)
	}
	n := len(bits) / s.BitsPerSymbol
	if cap(dst) < n {
		dst = make([]complex128, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = s.MapSymbol(bits[i*s.BitsPerSymbol : (i+1)*s.BitsPerSymbol])
	}
	return dst, nil
}

// MapSymbol maps exactly b bits to one symbol.
func (s *Scheme) MapSymbol(bits []byte) complex128 {
	if len(bits) != s.BitsPerSymbol {
		panic(fmt.Sprintf("modulation: MapSymbol got %d bits, want %d", len(bits), s.BitsPerSymbol))
	}
	iBits := bitsToUint(bits[:s.bi])
	re := pamLevel(grayEncode(iBits), 1<<s.bi)
	im := 0.0
	if s.bq > 0 {
		qBits := bitsToUint(bits[s.bi:])
		im = pamLevel(grayEncode(qBits), 1<<s.bq)
	}
	return complex(re*s.scale, im*s.scale)
}

// Demodulate hard-decides received symbols back to bits.
func (s *Scheme) Demodulate(syms []complex128) []byte {
	return s.DemodulateInto(syms, nil)
}

// DemodulateInto is Demodulate writing into dst (grown as needed), so
// block loops can reuse one bit buffer.
func (s *Scheme) DemodulateInto(syms []complex128, dst []byte) []byte {
	n := len(syms) * s.BitsPerSymbol
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	for i, y := range syms {
		s.DecideSymbol(y, dst[i*s.BitsPerSymbol:(i+1)*s.BitsPerSymbol])
	}
	return dst
}

// DecideSymbol hard-decides one received symbol into dst (len b).
func (s *Scheme) DecideSymbol(y complex128, dst []byte) {
	iIdx := pamDecide(real(y)/s.scale, 1<<s.bi)
	uintToBits(grayDecode(iIdx), dst[:s.bi])
	if s.bq > 0 {
		qIdx := pamDecide(imag(y)/s.scale, 1<<s.bq)
		uintToBits(grayDecode(qIdx), dst[s.bi:])
	}
}

// pamLevel maps a Gray-coded index in [0, L) to the odd-integer grid
// {-(L-1), ..., -1, 1, ..., L-1}.
func pamLevel(gray uint, l int) float64 {
	return float64(2*int(gray) - (l - 1))
}

// pamDecide maps an unnormalised coordinate back to the nearest index.
func pamDecide(x float64, l int) uint {
	idx := int(math.Round((x + float64(l-1)) / 2))
	if idx < 0 {
		idx = 0
	}
	if idx > l-1 {
		idx = l - 1
	}
	return uint(idx)
}

func grayEncode(v uint) uint { return v ^ (v >> 1) }

func grayDecode(g uint) uint {
	v := g
	for shift := uint(1); shift < 32; shift <<= 1 {
		v ^= v >> shift
	}
	return v
}

func bitsToUint(bits []byte) uint {
	var v uint
	for _, b := range bits {
		v = v<<1 | uint(b&1)
	}
	return v
}

func uintToBits(v uint, dst []byte) {
	for i := len(dst) - 1; i >= 0; i-- {
		dst[i] = byte(v & 1)
		v >>= 1
	}
}
