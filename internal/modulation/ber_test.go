package modulation

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestBERAWGNKnownPoints(t *testing.T) {
	// b=1 at gammaB: Q(sqrt(2*g)).
	if got, want := BERAWGN(1, 0), 0.5; got != want {
		t.Errorf("BPSK at 0 SNR = %v", got)
	}
	g := 4.0
	if got, want := BERAWGN(1, g), mathx.Q(math.Sqrt(8)); math.Abs(got-want) > 1e-15 {
		t.Errorf("BPSK = %v, want %v", got, want)
	}
	// b=2 reduces to Q(sqrt(2*g)) as well (QPSK == BPSK per bit).
	if a, b := BERAWGN(2, g), BERAWGN(1, g); math.Abs(a-b) > 1e-15 {
		t.Errorf("QPSK per-bit BER %v != BPSK %v", a, b)
	}
	// Negative SNR clamps.
	if got := BERAWGN(1, -5); got != 0.5 {
		t.Errorf("negative SNR = %v", got)
	}
}

func TestBERAWGNOrderingInB(t *testing.T) {
	// At fixed per-bit SNR, denser constellations err more (b >= 2).
	// The ordering holds in the waterfall region; at low SNR the
	// nearest-neighbour approximation saturates and it need not.
	g := 100.0
	prev := BERAWGN(2, g)
	for b := 4; b <= 16; b += 2 {
		cur := BERAWGN(b, g)
		if cur <= prev {
			t.Errorf("BER should grow with b: b=%d gives %v <= %v", b, cur, prev)
		}
		prev = cur
	}
}

func TestBERAWGNDecreasingInSNR(t *testing.T) {
	for _, b := range []int{1, 2, 4, 6} {
		prev := BERAWGN(b, 0.1)
		for g := 0.2; g < 100; g *= 2 {
			cur := BERAWGN(b, g)
			if cur >= prev {
				t.Errorf("b=%d: BER not decreasing at g=%v", b, g)
			}
			prev = cur
		}
	}
}

func TestBERRayleighBPSK(t *testing.T) {
	if got := BERRayleighBPSK(0); got != 0.5 {
		t.Errorf("zero SNR = %v", got)
	}
	// Monte-Carlo check: average Q(sqrt(2*g*X)) over X ~ Exp(1).
	rng := mathx.NewRand(41)
	gbar := 10.0
	var acc mathx.Running
	for i := 0; i < 300000; i++ {
		x := rng.ExpFloat64()
		acc.Add(mathx.Q(math.Sqrt(2 * gbar * x)))
	}
	want := BERRayleighBPSK(gbar)
	if math.Abs(acc.Mean()-want) > 0.03*want {
		t.Errorf("MC %v vs closed form %v", acc.Mean(), want)
	}
	// Asymptote 1/(4*gbar).
	if got, want := BERRayleighBPSK(1e4), 1/(4e4); math.Abs(got/want-1) > 0.01 {
		t.Errorf("asymptote: %v vs %v", got, want)
	}
}

func TestBERRayleighMRCDiversityOrder(t *testing.T) {
	// Slope on a log-log plot equals the diversity order L.
	for _, l := range []int{1, 2, 4} {
		p1 := BERRayleighMRC(l, 100)
		p2 := BERRayleighMRC(l, 1000)
		slope := math.Log10(p1 / p2) // decades of BER per decade of SNR
		if math.Abs(slope-float64(l)) > 0.15 {
			t.Errorf("L=%d: diversity slope = %v", l, slope)
		}
	}
	// L=1 must agree with the closed-form single-branch expression.
	if a, b := BERRayleighMRC(1, 7), BERRayleighBPSK(7); math.Abs(a-b) > 1e-12 {
		t.Errorf("MRC(1) %v != Rayleigh %v", a, b)
	}
	// Degenerate l < 1 clamps to 1.
	if a, b := BERRayleighMRC(0, 7), BERRayleighMRC(1, 7); a != b {
		t.Errorf("MRC(0) should clamp to L=1")
	}
}

func TestGMSKBER(t *testing.T) {
	// GMSK pays a fixed dB penalty versus BPSK.
	g := 5.0
	if GMSKBERAWGN(g) <= BERAWGN(1, g) {
		t.Error("GMSK should err more than BPSK at equal SNR")
	}
	if GMSKBERAWGN(-1) != GMSKBERAWGN(0) {
		t.Error("negative SNR should clamp")
	}
	// alpha=0.68: GMSK at g equals BPSK at 0.68*g.
	if a, b := GMSKBERAWGN(g), BERAWGN(1, 0.68*g); math.Abs(a-b) > 1e-15 {
		t.Errorf("GMSK alpha mismatch: %v vs %v", a, b)
	}
}

func TestRequiredGammaB(t *testing.T) {
	for _, b := range []int{1, 2, 4, 8} {
		for _, p := range []float64{0.1, 0.005, 0.0005} {
			g := RequiredGammaB(b, p)
			if math.IsInf(g, 1) {
				t.Fatalf("b=%d p=%v: unreachable", b, p)
			}
			if got := BERAWGN(b, g); math.Abs(got-p) > 1e-6*p+1e-12 {
				t.Errorf("b=%d p=%v: BER(required)=%v", b, p, got)
			}
		}
	}
	if !math.IsInf(RequiredGammaB(1, 0), 1) {
		t.Error("p=0 should be unreachable")
	}
	if RequiredGammaB(1, 0.6) != 0 {
		t.Error("trivially-met target should need 0 SNR")
	}
	// Higher b needs more SNR at the same BER target.
	if RequiredGammaB(4, 1e-3) <= RequiredGammaB(2, 1e-3) {
		t.Error("denser constellation should need more SNR")
	}
}
