package modulation

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestLLRValidation(t *testing.T) {
	s := MustNew(2)
	if err := s.LLR(0, 1, make([]float64, 1)); err == nil {
		t.Error("wrong output length should fail")
	}
	if err := s.LLR(0, 0, make([]float64, 2)); err == nil {
		t.Error("zero noise variance should fail")
	}
}

// TestBPSKLLRClosedForm: for BPSK the exact LLR is 4*Re(y)*scale/n0 up
// to the sign convention; max-log is exact here.
func TestBPSKLLRClosedForm(t *testing.T) {
	s := MustNew(1)
	llr := make([]float64, 1)
	for _, y := range []float64{-2, -0.3, 0.4, 1.7} {
		if err := s.LLR(complex(y, 0), 0.5, llr); err != nil {
			t.Fatal(err)
		}
		// Bit 0 maps to -1 and bit 1 to +1 (Gray-PAM convention), so
		// llr = (d1 - d0)/n0 = ((y-1)^2 - (y+1)^2)/n0 = -4y/n0: positive
		// received amplitude favours bit 1 (negative LLR).
		want := -4 * y / 0.5
		if math.Abs(llr[0]-want) > 1e-9 {
			t.Errorf("y=%v: llr=%v want %v", y, llr[0], want)
		}
	}
}

// TestLLRSignsMatchHardDecision: hard bits recovered from LLRs must
// agree with DecideSymbol for every constellation.
func TestLLRSignsMatchHardDecision(t *testing.T) {
	rng := mathx.NewRand(221)
	for _, b := range []int{1, 2, 3, 4, 6} {
		s := MustNew(b)
		llrs := make([]float64, b)
		soft := make([]byte, b)
		hard := make([]byte, b)
		for trial := 0; trial < 500; trial++ {
			y := mathx.ComplexCN(rng, 2)
			if err := s.LLR(y, 0.8, llrs); err != nil {
				t.Fatal(err)
			}
			HardFromLLR(llrs, soft)
			s.DecideSymbol(y, hard)
			for i := range soft {
				if soft[i] != hard[i] {
					t.Fatalf("b=%d y=%v: soft %v != hard %v (llrs %v)", b, y, soft, hard, llrs)
				}
			}
		}
	}
}

// TestLLRMagnitudeGrowsWithConfidence: a symbol right on a constellation
// point yields larger |LLR| at lower noise.
func TestLLRMagnitudeGrowsWithConfidence(t *testing.T) {
	s := MustNew(2)
	point := s.MapSymbol([]byte{0, 0})
	low := make([]float64, 2)
	high := make([]float64, 2)
	if err := s.LLR(point, 1.0, low); err != nil {
		t.Fatal(err)
	}
	if err := s.LLR(point, 0.1, high); err != nil {
		t.Fatal(err)
	}
	for i := range low {
		if math.Abs(high[i]) <= math.Abs(low[i]) {
			t.Errorf("bit %d: |LLR| should grow as noise falls: %v vs %v", i, high[i], low[i])
		}
		if low[i] < 0 {
			t.Errorf("bit %d: transmitted 0 should give positive LLR, got %v", i, low[i])
		}
	}
}

// TestSoftBeatsHardWithRepetition: combining two noisy observations by
// summing LLRs (soft) must beat majority-of-hard-decisions, the textbook
// motivation for soft outputs.
func TestSoftBeatsHardWithRepetition(t *testing.T) {
	rng := mathx.NewRand(222)
	s := MustNew(1)
	const n0 = 1.4
	const trials = 60000
	llr := make([]float64, 1)
	softErr, hardErr := 0, 0
	for i := 0; i < trials; i++ {
		bit := byte(rng.Intn(2))
		x := s.MapSymbol([]byte{bit})
		var llrSum float64
		votes := 0
		for rep := 0; rep < 3; rep++ {
			y := x + mathx.ComplexCN(rng, n0)
			if err := s.LLR(y, n0, llr); err != nil {
				t.Fatal(err)
			}
			llrSum += llr[0]
			d := make([]byte, 1)
			s.DecideSymbol(y, d)
			if d[0] == 1 {
				votes++
			}
		}
		var soft byte
		if llrSum < 0 {
			soft = 1
		}
		var hard byte
		if votes >= 2 {
			hard = 1
		}
		if soft != bit {
			softErr++
		}
		if hard != bit {
			hardErr++
		}
	}
	if softErr >= hardErr {
		t.Errorf("soft combining (%d errors) should beat hard majority (%d)", softErr, hardErr)
	}
}
