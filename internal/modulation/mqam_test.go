package modulation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestNewValidation(t *testing.T) {
	for _, b := range []int{0, -1, 17} {
		if _, err := New(b); err == nil {
			t.Errorf("New(%d) should fail", b)
		}
	}
	for b := 1; b <= 16; b++ {
		s, err := New(b)
		if err != nil {
			t.Fatalf("New(%d): %v", b, err)
		}
		if s.M() != 1<<b {
			t.Errorf("M() = %d, want %d", s.M(), 1<<b)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) should panic")
		}
	}()
	MustNew(0)
}

func TestModulateRoundTrip(t *testing.T) {
	rng := mathx.NewRand(31)
	for b := 1; b <= 16; b++ {
		s := MustNew(b)
		bits := randBits(rng, 64*b)
		syms, err := s.Modulate(bits)
		if err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		if len(syms) != 64 {
			t.Fatalf("b=%d: %d symbols", b, len(syms))
		}
		back := s.Demodulate(syms)
		for i := range bits {
			if bits[i] != back[i] {
				t.Fatalf("b=%d: bit %d corrupted without noise", b, i)
			}
		}
	}
}

func TestModulateLengthError(t *testing.T) {
	s := MustNew(3)
	if _, err := s.Modulate(make([]byte, 4)); err == nil {
		t.Error("non-multiple length should error")
	}
}

func TestUnitAverageEnergy(t *testing.T) {
	rng := mathx.NewRand(32)
	for b := 1; b <= 10; b++ {
		s := MustNew(b)
		bits := randBits(rng, 20000*b)
		syms, _ := s.Modulate(bits)
		var e mathx.Running
		for _, y := range syms {
			e.Add(real(y)*real(y) + imag(y)*imag(y))
		}
		if math.Abs(e.Mean()-1) > 0.02 {
			t.Errorf("b=%d: mean symbol energy = %v, want 1", b, e.Mean())
		}
	}
}

func TestBPSKIsReal(t *testing.T) {
	s := MustNew(1)
	for _, bit := range []byte{0, 1} {
		y := s.MapSymbol([]byte{bit})
		if imag(y) != 0 {
			t.Errorf("BPSK symbol has imaginary part: %v", y)
		}
		if math.Abs(real(y))-1 > 1e-12 {
			t.Errorf("BPSK symbol magnitude = %v", real(y))
		}
	}
	// The two symbols must be antipodal.
	if s.MapSymbol([]byte{0}) != -s.MapSymbol([]byte{1}) {
		t.Error("BPSK not antipodal")
	}
}

func TestGrayNeighbours(t *testing.T) {
	// Gray code: adjacent indices differ in exactly one bit.
	for v := uint(0); v < 63; v++ {
		d := grayEncode(v) ^ grayEncode(v+1)
		if popcount(d) != 1 {
			t.Fatalf("gray(%d) and gray(%d) differ in %d bits", v, v+1, popcount(d))
		}
	}
	// Decode inverts encode.
	f := func(v uint16) bool {
		return grayDecode(grayEncode(uint(v))) == uint(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func popcount(v uint) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func TestDecisionClamping(t *testing.T) {
	s := MustNew(2)
	buf := make([]byte, 2)
	// Far outside the constellation still decides the nearest corner.
	s.DecideSymbol(complex(1e6, -1e6), buf)
	y := s.MapSymbol(buf)
	if real(y) < 0 || imag(y) > 0 {
		t.Errorf("clamped decision wrong corner: %v", y)
	}
}

// TestQPSKBERMatchesTheory sends QPSK through AWGN and compares the
// simulated BER to eq. (5): for b=2 the formula reduces to Q(sqrt(2*gb)).
func TestQPSKBERMatchesTheory(t *testing.T) {
	rng := mathx.NewRand(33)
	s := MustNew(2)
	for _, snrDB := range []float64{0, 4, 8} {
		gb := math.Pow(10, snrDB/10)
		// Es = b*Eb => noise variance per symbol = 1/(b*gb) for unit Es.
		n0 := 1 / (float64(s.BitsPerSymbol) * gb)
		const nBits = 400000
		bits := randBits(rng, nBits)
		syms, _ := s.Modulate(bits)
		for i := range syms {
			syms[i] += complex(rng.NormFloat64()*math.Sqrt(n0/2), rng.NormFloat64()*math.Sqrt(n0/2))
		}
		got := berOf(bits, s.Demodulate(syms))
		want := BERAWGN(2, gb)
		if math.Abs(got-want) > 0.15*want+1e-5 {
			t.Errorf("snr=%v dB: simulated BER %v vs theory %v", snrDB, got, want)
		}
	}
}

// Test16QAMBERMatchesTheory validates the Gray-mapped 16-QAM rail design
// against the paper's b=4 approximation.
func Test16QAMBERMatchesTheory(t *testing.T) {
	rng := mathx.NewRand(34)
	s := MustNew(4)
	for _, snrDB := range []float64{6, 10} {
		gb := math.Pow(10, snrDB/10)
		n0 := 1 / (float64(4) * gb)
		const nBits = 400000
		bits := randBits(rng, nBits)
		syms, _ := s.Modulate(bits)
		for i := range syms {
			syms[i] += complex(rng.NormFloat64()*math.Sqrt(n0/2), rng.NormFloat64()*math.Sqrt(n0/2))
		}
		got := berOf(bits, s.Demodulate(syms))
		want := BERAWGN(4, gb)
		// The paper's expression is a nearest-neighbour approximation;
		// allow 20%.
		if math.Abs(got-want) > 0.2*want+1e-5 {
			t.Errorf("snr=%v dB: simulated BER %v vs theory %v", snrDB, got, want)
		}
	}
}

func randBits(rng *rand.Rand, n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	return bits
}

func berOf(sent, got []byte) float64 {
	errs := 0
	for i := range sent {
		if sent[i] != got[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(sent))
}
