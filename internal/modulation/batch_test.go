package modulation

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mathx"
)

// TestModulateBatchMatchesScalar pins the table-driven SoA mapper
// against MapSymbol for every constellation order, over the
// element-major bit layout the cooperative hop uses.
func TestModulateBatchMatchesScalar(t *testing.T) {
	const lanes, n = 3, 25
	for b := 1; b <= 16; b++ {
		s, err := New(b)
		if err != nil {
			t.Fatalf("New(%d): %v", b, err)
		}
		rng := rand.New(rand.NewSource(int64(b)))
		bits := make([]byte, lanes*n*b)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		batch := mathx.NewBatchCF64(lanes, n)
		if err := s.ModulateBatchInto(bits, batch, lanes, n); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < lanes; k++ {
			for i := 0; i < n; i++ {
				base := i*lanes*b + k*b
				want := s.MapSymbol(bits[base : base+b])
				if got := batch.At(k, i); got != want {
					t.Fatalf("b=%d lane %d entry %d: batch %v, scalar %v", b, k, i, got, want)
				}
			}
		}
	}
}

// TestDemodulateBatchMatchesScalar pins hard decisions against
// DecideSymbol for every order — the exact bytes, not just the error
// counts.
func TestDemodulateBatchMatchesScalar(t *testing.T) {
	const lanes, n = 2, 31
	for b := 1; b <= 16; b++ {
		s, err := New(b)
		if err != nil {
			t.Fatalf("New(%d): %v", b, err)
		}
		rng := rand.New(rand.NewSource(int64(100 + b)))
		batch := mathx.NewBatchCF64(lanes, n)
		for i := range batch.Data {
			batch.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := make([]byte, lanes*n*b)
		if err := s.DemodulateBatchInto(batch, lanes, n, got); err != nil {
			t.Fatal(err)
		}
		want := make([]byte, b)
		for k := 0; k < lanes; k++ {
			for i := 0; i < n; i++ {
				s.DecideSymbol(batch.At(k, i), want)
				base := i*lanes*b + k*b
				for j := 0; j < b; j++ {
					if got[base+j] != want[j] {
						t.Fatalf("b=%d lane %d entry %d bit %d: batch %d, scalar %d",
							b, k, i, j, got[base+j], want[j])
					}
				}
			}
		}
	}
}

// TestDemodulateBatchDivMatchesScalar pins the fused divide-then-decide
// against DecideSymbol(sym/div) for both divisor shapes: the real
// divisor fast path (the decoder's energy scale) and a genuinely
// complex divisor through the full complex division.
func TestDemodulateBatchDivMatchesScalar(t *testing.T) {
	const lanes, n = 2, 27
	divisors := []complex128{complex(2.75, 0), complex(1.5, -0.75)}
	for b := 1; b <= 16; b++ {
		s, err := New(b)
		if err != nil {
			t.Fatalf("New(%d): %v", b, err)
		}
		for di, div := range divisors {
			t.Run(fmt.Sprintf("b=%d/div=%d", b, di), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(200 + b)))
				batch := mathx.NewBatchCF64(lanes, n)
				for i := range batch.Data {
					batch.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				got := make([]byte, lanes*n*b)
				if err := s.DemodulateBatchDivInto(batch, div, lanes, n, got); err != nil {
					t.Fatal(err)
				}
				want := make([]byte, b)
				for k := 0; k < lanes; k++ {
					for i := 0; i < n; i++ {
						s.DecideSymbol(batch.At(k, i)/div, want)
						base := i*lanes*b + k*b
						for j := 0; j < b; j++ {
							if got[base+j] != want[j] {
								t.Fatalf("lane %d entry %d bit %d: batch %d, scalar %d",
									k, i, j, got[base+j], want[j])
							}
						}
					}
				}
			})
		}
	}
}

// TestModulateDemodulateBatchRoundTrip checks the clean-channel loop:
// bits -> SoA symbols -> decisions must reproduce the bits exactly for
// every order.
func TestModulateDemodulateBatchRoundTrip(t *testing.T) {
	const lanes, n = 4, 16
	for b := 1; b <= 16; b++ {
		s, err := New(b)
		if err != nil {
			t.Fatalf("New(%d): %v", b, err)
		}
		rng := rand.New(rand.NewSource(int64(300 + b)))
		bits := make([]byte, lanes*n*b)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		batch := mathx.NewBatchCF64(lanes, n)
		if err := s.ModulateBatchInto(bits, batch, lanes, n); err != nil {
			t.Fatal(err)
		}
		back := make([]byte, lanes*n*b)
		if err := s.DemodulateBatchInto(batch, lanes, n, back); err != nil {
			t.Fatal(err)
		}
		for i := range bits {
			if bits[i] != back[i] {
				t.Fatalf("b=%d bit %d flipped through a clean round trip", b, i)
			}
		}
	}
}
