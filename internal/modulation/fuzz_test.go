package modulation

import "testing"

// FuzzModulateRoundTrip drives arbitrary bit patterns through every
// constellation and requires noiseless demodulation to be the identity.
func FuzzModulateRoundTrip(f *testing.F) {
	f.Add(uint8(1), []byte{0, 1, 1, 0})
	f.Add(uint8(4), []byte{1, 1, 1, 1})
	f.Add(uint8(16), make([]byte, 32))
	f.Fuzz(func(t *testing.T, bRaw uint8, bits []byte) {
		b := int(bRaw)%16 + 1
		s := MustNew(b)
		// Trim to a whole number of symbols and force bits binary.
		n := (len(bits) / b) * b
		bits = bits[:n]
		for i := range bits {
			bits[i] &= 1
		}
		syms, err := s.Modulate(bits)
		if err != nil {
			t.Fatalf("b=%d len=%d: %v", b, n, err)
		}
		back := s.Demodulate(syms)
		if len(back) != len(bits) {
			t.Fatalf("length changed: %d -> %d", len(bits), len(back))
		}
		for i := range bits {
			if back[i] != bits[i] {
				t.Fatalf("b=%d: bit %d corrupted without noise", b, i)
			}
		}
	})
}
