package modulation

import (
	"fmt"

	"repro/internal/mathx"
)

// Batched structure-of-arrays mapping. The scalar Modulate/Demodulate
// walk one symbol at a time through MapSymbol/DecideSymbol, paying the
// Gray-code bit fiddling per call; the batch variants use the per-rail
// level and bit tables precomputed by New and stream whole lanes, so
// the per-symbol work collapses to a table index. Outputs are
// bit-identical to the scalar path: the tables are filled by the exact
// pamLevel/grayEncode/grayDecode arithmetic the scalar path runs.

// lut holds the per-rail constellation tables: levels maps a rail's
// bit pattern to its (unscaled) PAM level, bits maps a decided rail
// index to its Gray-decoded bit pattern (railBits bytes per entry).
type lut struct {
	iLevels, qLevels []float64
	iBits, qBits     []byte // flattened: entry idx occupies [idx*rail : (idx+1)*rail]
}

// buildLUT fills the tables using the same arithmetic as MapSymbol and
// DecideSymbol, so table-driven outputs match the scalar path exactly.
// Rails hold at most 8 bits (b <= 16), so the tables stay tiny.
func (s *Scheme) buildLUT() *lut {
	li, lq := 1<<s.bi, 1<<s.bq
	t := &lut{
		iLevels: make([]float64, li),
		iBits:   make([]byte, li*s.bi),
	}
	for v := 0; v < li; v++ {
		t.iLevels[v] = pamLevel(grayEncode(uint(v)), li)
		uintToBits(grayDecode(uint(v)), t.iBits[v*s.bi:(v+1)*s.bi])
	}
	if s.bq > 0 {
		t.qLevels = make([]float64, lq)
		t.qBits = make([]byte, lq*s.bq)
		for v := 0; v < lq; v++ {
			t.qLevels[v] = pamLevel(grayEncode(uint(v)), lq)
			uintToBits(grayDecode(uint(v)), t.qBits[v*s.bq:(v+1)*s.bq])
		}
	}
	return t
}

// ModulateBatchInto maps bits to symbols in SoA layout: dst must have
// at least `lanes` lanes of n entries, and bits must hold n*lanes*b
// bits laid out element-major (element i's symbols occupy
// bits[i*lanes*b : (i+1)*lanes*b]). Lane k, entry i receives the
// symbol of bits [i*lanes*b+k*b : i*lanes*b+(k+1)*b], exactly the
// value MapSymbol returns for those bits.
func (s *Scheme) ModulateBatchInto(bits []byte, dst *mathx.BatchCF64, lanes, n int) error {
	b := s.BitsPerSymbol
	if len(bits) != lanes*n*b {
		return fmt.Errorf("modulation: %d bits for a %dx%d batch of b=%d symbols", len(bits), lanes, n, b)
	}
	if dst.Lanes < lanes || dst.N != n {
		return fmt.Errorf("modulation: batch is %dx%d, need %dx%d", dst.Lanes, dst.N, lanes, n)
	}
	t := s.lut
	stride := lanes * b
	if b == 1 {
		// BPSK: one bit per symbol, pure I rail — a straight table walk.
		for k := 0; k < lanes; k++ {
			lane := dst.Lane(k)[:n]
			idx := k
			for i := range lane {
				lane[i] = complex(t.iLevels[bits[idx]&1]*s.scale, 0)
				idx += stride
			}
		}
		return nil
	}
	for k := 0; k < lanes; k++ {
		lane := dst.Lane(k)[:n]
		off := k * b
		for i := range lane {
			base := i*stride + off
			iIdx := bitsToUint(bits[base : base+s.bi])
			re := t.iLevels[iIdx]
			im := 0.0
			if s.bq > 0 {
				qIdx := bitsToUint(bits[base+s.bi : base+b])
				im = t.qLevels[qIdx]
			}
			lane[i] = complex(re*s.scale, im*s.scale)
		}
	}
	return nil
}

// DemodulateBatchDivInto is DemodulateBatchInto with every symbol first
// divided by div — the decoder's estimate-rescaling step — fused into
// the decision pass. The division is the same complex division the
// scalar path performs on each estimate, so decisions match
// DecideSymbol(sym/div, ...) bit for bit.
func (s *Scheme) DemodulateBatchDivInto(src *mathx.BatchCF64, div complex128, lanes, n int, dst []byte) error {
	b := s.BitsPerSymbol
	if len(dst) != lanes*n*b {
		return fmt.Errorf("modulation: %d dst bits for a %dx%d batch of b=%d symbols", len(dst), lanes, n, b)
	}
	if src.Lanes < lanes || src.N != n {
		return fmt.Errorf("modulation: batch is %dx%d, need %dx%d", src.Lanes, src.N, lanes, n)
	}
	t := s.lut
	stride := lanes * b
	li, lq := 1<<s.bi, 1<<s.bq
	if imag(div) == 0 {
		// Real divisor (the decoder's sqrt-energy scale, always real):
		// the runtime complex division reduces to one scalar divide per
		// rail — Smith's algorithm with a zero ratio yields exactly
		// re/d and im/d whenever they are nonzero, and the signed-zero
		// corner decides the same constellation point either way — so
		// decisions match the full division bit for bit.
		d := real(div)
		if b == 1 {
			for k := 0; k < lanes; k++ {
				lane := src.Lane(k)[:n]
				idx := k
				for _, y := range lane {
					dst[idx] = t.iBits[pamDecide(real(y)/d/s.scale, li)]
					idx += stride
				}
			}
			return nil
		}
		for k := 0; k < lanes; k++ {
			lane := src.Lane(k)[:n]
			off := k * b
			for i, y := range lane {
				base := i*stride + off
				iIdx := int(pamDecide(real(y)/d/s.scale, li)) * s.bi
				for j := 0; j < s.bi; j++ {
					dst[base+j] = t.iBits[iIdx+j]
				}
				if s.bq > 0 {
					qIdx := int(pamDecide(imag(y)/d/s.scale, lq)) * s.bq
					for j := 0; j < s.bq; j++ {
						dst[base+s.bi+j] = t.qBits[qIdx+j]
					}
				}
			}
		}
		return nil
	}
	if b == 1 {
		for k := 0; k < lanes; k++ {
			lane := src.Lane(k)[:n]
			idx := k
			for _, y := range lane {
				y /= div
				dst[idx] = t.iBits[pamDecide(real(y)/s.scale, li)]
				idx += stride
			}
		}
		return nil
	}
	for k := 0; k < lanes; k++ {
		lane := src.Lane(k)[:n]
		off := k * b
		for i, y := range lane {
			y /= div
			base := i*stride + off
			iIdx := int(pamDecide(real(y)/s.scale, li)) * s.bi
			for j := 0; j < s.bi; j++ {
				dst[base+j] = t.iBits[iIdx+j]
			}
			if s.bq > 0 {
				qIdx := int(pamDecide(imag(y)/s.scale, lq)) * s.bq
				for j := 0; j < s.bq; j++ {
					dst[base+s.bi+j] = t.qBits[qIdx+j]
				}
			}
		}
	}
	return nil
}

// DemodulateBatchInto hard-decides an SoA symbol batch back to bits in
// the element-major layout ModulateBatchInto consumes: lane k, entry i
// decides into dst[i*lanes*b+k*b : i*lanes*b+(k+1)*b]. Decisions are
// bit-identical to DecideSymbol on each entry.
func (s *Scheme) DemodulateBatchInto(src *mathx.BatchCF64, lanes, n int, dst []byte) error {
	b := s.BitsPerSymbol
	if len(dst) != lanes*n*b {
		return fmt.Errorf("modulation: %d dst bits for a %dx%d batch of b=%d symbols", len(dst), lanes, n, b)
	}
	if src.Lanes < lanes || src.N != n {
		return fmt.Errorf("modulation: batch is %dx%d, need %dx%d", src.Lanes, src.N, lanes, n)
	}
	t := s.lut
	stride := lanes * b
	li, lq := 1<<s.bi, 1<<s.bq
	if b == 1 {
		// BPSK: a single I-rail decision per symbol, one byte out.
		for k := 0; k < lanes; k++ {
			lane := src.Lane(k)[:n]
			idx := k
			for _, y := range lane {
				dst[idx] = t.iBits[pamDecide(real(y)/s.scale, li)]
				idx += stride
			}
		}
		return nil
	}
	for k := 0; k < lanes; k++ {
		lane := src.Lane(k)[:n]
		off := k * b
		for i, y := range lane {
			base := i*stride + off
			iIdx := int(pamDecide(real(y)/s.scale, li)) * s.bi
			for j := 0; j < s.bi; j++ {
				dst[base+j] = t.iBits[iIdx+j]
			}
			if s.bq > 0 {
				qIdx := int(pamDecide(imag(y)/s.scale, lq)) * s.bq
				for j := 0; j < s.bq; j++ {
					dst[base+s.bi+j] = t.qBits[qIdx+j]
				}
			}
		}
	}
	return nil
}
