package mathx

import (
	"testing"
)

// TestBatchCF64ScatterGatherRoundTrip pins the AoS<->SoA bridge: a
// matrix scattered into a batch column and gathered back is bitwise
// unchanged, and lives at the documented lane-major offsets.
func TestBatchCF64ScatterGatherRoundTrip(t *testing.T) {
	rng := NewRand(7)
	const rows, cols, n = 3, 4, 17
	b := NewBatchCF64(rows*cols, n)
	src := make([]*CMat, n)
	for i := range src {
		m := NewCMat(rows, cols)
		for k := range m.Data {
			m.Data[k] = ComplexCN(rng, 1)
		}
		src[i] = m
		b.ScatterMat(i, m)
	}
	var back CMat
	for i, m := range src {
		b.GatherMat(i, rows, cols, &back)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if got, want := back.At(r, c), m.At(r, c); got != want {
					t.Fatalf("element %d cell (%d,%d): got %v, want %v", i, r, c, got, want)
				}
				if got := b.At(r*cols+c, i); got != m.At(r, c) {
					t.Fatalf("lane-major offset broken at element %d cell (%d,%d)", i, r, c)
				}
				if got := b.Data[(r*cols+c)*n+i]; got != m.At(r, c) {
					t.Fatalf("Data[l*N+i] layout broken at element %d cell (%d,%d)", i, r, c)
				}
			}
		}
	}
}

// TestBatchCF64ResizeReusesBacking checks the scratch-reuse contract:
// shrinking and regrowing within capacity must not reallocate, so hot
// loops that Resize per tile stay allocation-free.
func TestBatchCF64ResizeReusesBacking(t *testing.T) {
	b := NewBatchCF64(8, 64)
	p0 := &b.Data[0]
	b.Resize(2, 16)
	if &b.Data[0] != p0 {
		t.Fatal("shrinking Resize reallocated the backing slice")
	}
	b.Resize(8, 64)
	if &b.Data[0] != p0 {
		t.Fatal("regrowing Resize within capacity reallocated")
	}
	if b.Lanes != 8 || b.N != 64 || len(b.Data) != 8*64 {
		t.Fatalf("shape after Resize: %dx%d len %d", b.Lanes, b.N, len(b.Data))
	}
}

// TestBatchCF64LaneBounds verifies Lane returns exactly one lane with
// capacity clamped to it, so a kernel cannot silently run into the
// next lane.
func TestBatchCF64LaneBounds(t *testing.T) {
	b := NewBatchCF64(3, 5)
	for l := 0; l < 3; l++ {
		lane := b.Lane(l)
		if len(lane) != 5 || cap(lane) != 5 {
			t.Fatalf("lane %d: len %d cap %d, want 5/5", l, len(lane), cap(lane))
		}
		for i := range lane {
			lane[i] = complex(float64(l), float64(i))
		}
	}
	for l := 0; l < 3; l++ {
		for i := 0; i < 5; i++ {
			if b.At(l, i) != complex(float64(l), float64(i)) {
				t.Fatalf("lane %d entry %d clobbered: %v", l, i, b.At(l, i))
			}
		}
	}
}

// TestBatchF64Shape covers the float variant's Resize/Lane/Zero.
func TestBatchF64Shape(t *testing.T) {
	var b BatchF64
	b.Resize(2, 9)
	for i := range b.Lane(1) {
		b.Lane(1)[i] = float64(i) + 1
	}
	if b.Lane(0)[8] != 0 {
		t.Fatal("lane 0 overlaps lane 1")
	}
	b.Zero()
	for _, v := range b.Data {
		if v != 0 {
			t.Fatal("Zero left residue")
		}
	}
}
