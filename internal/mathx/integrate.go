package mathx

import "math"

// Integrate computes the definite integral of f over [a, b] using
// adaptive Simpson quadrature with absolute tolerance tol.
//
// The exact Rayleigh-average BER expressions used to cross-check the
// Monte-Carlo ebtable are one-dimensional integrals over the channel-gain
// density; adaptive Simpson handles their mild endpoint behaviour well.
func Integrate(f func(float64) float64, a, b, tol float64) float64 {
	if a == b {
		return 0
	}
	if a > b {
		return -Integrate(f, b, a, tol)
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := simpson(a, b, fa, fm, fb)
	return adaptiveSimpson(f, a, b, fa, fm, fb, whole, tol, 50)
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	delta := left + right - whole
	if depth <= 0 || math.Abs(delta) <= 15*tol {
		return left + right + delta/15
	}
	return adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// IntegrateExpTail computes the integral of f over [a, +inf) for
// integrands with (at least) exponential decay, by mapping t in (0, 1]
// to x = a - ln(t) and integrating the transformed integrand.
func IntegrateExpTail(f func(float64) float64, a, tol float64) float64 {
	g := func(t float64) float64 {
		if t <= 0 {
			return 0
		}
		x := a - math.Log(t)
		return f(x) / t
	}
	return Integrate(g, 0, 1, tol)
}
