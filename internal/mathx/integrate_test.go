package mathx

import (
	"math"
	"testing"
)

func TestIntegratePolynomial(t *testing.T) {
	// integral of x^2 over [0,3] = 9.
	got := Integrate(func(x float64) float64 { return x * x }, 0, 3, 1e-12)
	if math.Abs(got-9) > 1e-9 {
		t.Errorf("Integrate x^2 = %v, want 9", got)
	}
}

func TestIntegrateReversedAndEmpty(t *testing.T) {
	f := func(x float64) float64 { return x }
	if got := Integrate(f, 2, 2, 1e-9); got != 0 {
		t.Errorf("empty interval = %v", got)
	}
	fwd := Integrate(f, 0, 1, 1e-12)
	rev := Integrate(f, 1, 0, 1e-12)
	if math.Abs(fwd+rev) > 1e-12 {
		t.Errorf("reversed interval should negate: %v vs %v", fwd, rev)
	}
}

func TestIntegrateOscillatory(t *testing.T) {
	// integral of sin over [0, pi] = 2.
	got := Integrate(math.Sin, 0, math.Pi, 1e-12)
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("Integrate sin = %v, want 2", got)
	}
}

func TestIntegrateGaussian(t *testing.T) {
	// integral of pdf over [-8, 8] ~ 1.
	got := Integrate(gaussPDF, -8, 8, 1e-12)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("Integrate gaussPDF = %v, want 1", got)
	}
}

func TestIntegrateExpTail(t *testing.T) {
	// integral of e^-x over [a, inf) = e^-a.
	for _, a := range []float64{0, 1, 5} {
		got := IntegrateExpTail(func(x float64) float64 { return math.Exp(-x) }, a, 1e-12)
		want := math.Exp(-a)
		if math.Abs(got-want) > 1e-8*want {
			t.Errorf("IntegrateExpTail a=%v: %v, want %v", a, got, want)
		}
	}
	// Rayleigh-average BPSK BER: integral over gamma of Q(sqrt(2 gamma)) e^-gamma
	// = 0.5 (1 - sqrt(gbar/(1+gbar))) with gbar = 1.
	got := IntegrateExpTail(func(g float64) float64 { return Q(math.Sqrt(2*g)) * math.Exp(-g) }, 0, 1e-12)
	want := 0.5 * (1 - math.Sqrt(0.5))
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("Rayleigh BPSK BER = %v, want %v", got, want)
	}
}
