package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v", r.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(r.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v", r.Variance())
	}
	if math.Abs(r.StdErr()-r.StdDev()/math.Sqrt(8)) > 1e-15 {
		t.Errorf("StdErr inconsistent")
	}
	if r.CI95() <= 0 {
		t.Errorf("CI95 = %v", r.CI95())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdErr() != 0 || r.N() != 0 {
		t.Error("empty Running should be all zero")
	}
	var s Running
	s.Add(1)
	if s.Variance() != 0 {
		t.Error("single-sample variance should be 0")
	}
}

func TestRunningMergeEquivalence(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		xs = clean
		if len(xs) < 2 {
			return true
		}
		k := int(split) % len(xs)
		var whole, a, b Running
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			return false
		}
		scale := math.Max(1, math.Abs(whole.Mean()))
		if math.Abs(a.Mean()-whole.Mean()) > 1e-9*scale {
			return false
		}
		vscale := math.Max(1, whole.Variance())
		return math.Abs(a.Variance()-whole.Variance()) < 1e-6*vscale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEmptySides(t *testing.T) {
	var a, b Running
	b.Add(3)
	b.Add(5)
	a.Merge(b) // empty receiver adopts argument
	if a.N() != 2 || a.Mean() != 4 {
		t.Errorf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
	var empty Running
	a.Merge(empty) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 4 {
		t.Errorf("merge of empty changed state: n=%d mean=%v", a.N(), a.Mean())
	}
}

func TestMeanMedianMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 3 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("even median")
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty slices should give 0")
	}
	lo, hi := MinMax(xs)
	if lo != 1 || hi != 5 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	// Median must not reorder its input.
	if xs[0] != 3 || xs[4] != 5 {
		t.Error("Median mutated input")
	}
}
