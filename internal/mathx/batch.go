package mathx

import "fmt"

// BatchCF64 is a structure-of-arrays batch of complex values: Lanes
// logical fields stored in one contiguous []complex128, lane-major,
// with N entries per lane. Entry i of lane l lives at Data[l*N+i], so
// a pass over one field of every batch element is a single contiguous
// walk — the layout the batched stbc/modulation/channel kernels stream
// over. The AoS equivalent (N small per-element matrices) pointer-
// chases one allocation per element; the SoA form is one allocation
// per batch and keeps the inner loops long and branch-free.
type BatchCF64 struct {
	Lanes, N int
	Data     []complex128
}

// NewBatchCF64 allocates a zeroed lanes-by-n batch.
func NewBatchCF64(lanes, n int) *BatchCF64 {
	b := &BatchCF64{}
	b.Resize(lanes, n)
	return b
}

// Resize reshapes the batch to lanes-by-n, reusing the backing slice
// when it has capacity. Contents are unspecified after the call; it
// exists so hot loops can keep one scratch batch across shape changes.
func (b *BatchCF64) Resize(lanes, n int) *BatchCF64 {
	if lanes < 0 || n < 0 {
		panic(fmt.Sprintf("mathx: invalid BatchCF64 dims %dx%d", lanes, n))
	}
	if cap(b.Data) < lanes*n {
		b.Data = make([]complex128, lanes*n)
	}
	b.Lanes, b.N, b.Data = lanes, n, b.Data[:lanes*n]
	return b
}

// Zero clears every entry and returns b.
func (b *BatchCF64) Zero() *BatchCF64 {
	for i := range b.Data {
		b.Data[i] = 0
	}
	return b
}

// Lane returns the contiguous slice of lane l across the batch.
func (b *BatchCF64) Lane(l int) []complex128 {
	return b.Data[l*b.N : (l+1)*b.N : (l+1)*b.N]
}

// At returns lane l of batch element i.
func (b *BatchCF64) At(l, i int) complex128 { return b.Data[l*b.N+i] }

// Set assigns lane l of batch element i.
func (b *BatchCF64) Set(l, i int, v complex128) { b.Data[l*b.N+i] = v }

// ScatterMat writes the row-major entries of m into column i: lane
// r*m.Cols+c receives m.At(r, c). It is the AoS-to-SoA bridge for one
// batch element; the batch must have m.Rows*m.Cols lanes.
func (b *BatchCF64) ScatterMat(i int, m *CMat) {
	if b.Lanes != m.Rows*m.Cols {
		panic(fmt.Sprintf("mathx: ScatterMat %dx%d into %d lanes", m.Rows, m.Cols, b.Lanes))
	}
	for l, v := range m.Data {
		b.Data[l*b.N+i] = v
	}
}

// GatherMat reads column i back into an r-by-c matrix (reshaped via
// EnsureShape; allocated when nil) — the SoA-to-AoS bridge.
func (b *BatchCF64) GatherMat(i, r, c int, m *CMat) *CMat {
	if b.Lanes != r*c {
		panic(fmt.Sprintf("mathx: GatherMat %dx%d from %d lanes", r, c, b.Lanes))
	}
	m = EnsureShape(m, r, c)
	for l := range m.Data {
		m.Data[l] = b.Data[l*b.N+i]
	}
	return m
}

// BatchF64 is the real-valued sibling of BatchCF64: lane-major float64
// fields across a batch. The batched decoders use it for per-element
// matched-filter accumulators (dot products and squared norms).
type BatchF64 struct {
	Lanes, N int
	Data     []float64
}

// Resize reshapes the batch to lanes-by-n, reusing the backing slice
// when it has capacity; contents are unspecified after the call.
func (b *BatchF64) Resize(lanes, n int) *BatchF64 {
	if lanes < 0 || n < 0 {
		panic(fmt.Sprintf("mathx: invalid BatchF64 dims %dx%d", lanes, n))
	}
	if cap(b.Data) < lanes*n {
		b.Data = make([]float64, lanes*n)
	}
	b.Lanes, b.N, b.Data = lanes, n, b.Data[:lanes*n]
	return b
}

// Zero clears every entry and returns b.
func (b *BatchF64) Zero() *BatchF64 {
	for i := range b.Data {
		b.Data[i] = 0
	}
	return b
}

// Lane returns the contiguous slice of lane l across the batch.
func (b *BatchF64) Lane(l int) []float64 {
	return b.Data[l*b.N : (l+1)*b.N : (l+1)*b.N]
}
