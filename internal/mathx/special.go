// Package mathx collects the numerical building blocks the reproduction
// relies on: the Gaussian Q-function and its inverse, root finding,
// adaptive quadrature, streaming statistics, and complex-matrix helpers.
//
// Nothing here is specific to cognitive radio; the package exists because
// the Go standard library has no special-function or linear-algebra layer
// and the paper's energy model (Section 2.3) needs exactly these pieces.
package mathx

import "math"

// Q is the Gaussian tail probability Q(x) = P[N(0,1) > x].
//
// Both BER expressions of the paper (eqs. 5 and 6) are built from Q.
func Q(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// QInv returns the x with Q(x) = p for p in (0, 1).
//
// It is used to invert BER targets into required SNRs when seeding the
// ebtable bisection with a good initial bracket. Newton iteration refines
// an asymptotic initial guess; accuracy is ~1e-12 over p in [1e-300, 1-1e-16].
func QInv(p float64) float64 {
	switch {
	case math.IsNaN(p) || p <= 0 || p >= 1:
		if p == 0.5 {
			return 0
		}
		return math.NaN()
	case p == 0.5:
		return 0
	case p > 0.5:
		return -QInv(1 - p)
	}
	// Initial guess from the asymptotic expansion
	// Q(x) ~ exp(-x^2/2) / (x sqrt(2 pi)).
	t := math.Sqrt(-2 * math.Log(p))
	x := t - (math.Log(t)+math.Log(2*math.Pi)/2)/t
	if x < 0 {
		x = 0
	}
	for i := 0; i < 60; i++ {
		fx := Q(x) - p
		// Q'(x) = -phi(x)
		d := -gaussPDF(x)
		if d == 0 {
			break
		}
		step := fx / d
		x -= step
		if math.Abs(step) < 1e-14*(1+math.Abs(x)) {
			break
		}
	}
	return x
}

func gaussPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
