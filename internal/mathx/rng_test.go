package mathx

import (
	"math"
	"testing"
)

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDeriveSeeds(t *testing.T) {
	s1 := DeriveSeeds(99, 8)
	s2 := DeriveSeeds(99, 8)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("DeriveSeeds not deterministic")
		}
	}
	seen := map[int64]bool{}
	for _, s := range s1 {
		if seen[s] {
			t.Fatal("duplicate derived seed")
		}
		seen[s] = true
	}
	// Different masters must give different streams.
	other := DeriveSeeds(100, 8)
	same := 0
	for i := range s1 {
		if s1[i] == other[i] {
			same++
		}
	}
	if same == len(s1) {
		t.Fatal("different masters gave identical seeds")
	}
	if len(DeriveSeeds(1, 0)) != 0 {
		t.Fatal("zero seeds requested")
	}
}

func TestRayleighMoments(t *testing.T) {
	rng := NewRand(5)
	var r Running
	const sigma = 2.0
	for i := 0; i < 200000; i++ {
		r.Add(Rayleigh(rng, sigma))
	}
	wantMean := sigma * math.Sqrt(math.Pi/2)
	if math.Abs(r.Mean()-wantMean) > 0.02*wantMean {
		t.Errorf("Rayleigh mean = %v, want %v", r.Mean(), wantMean)
	}
	wantVar := (2 - math.Pi/2) * sigma * sigma
	if math.Abs(r.Variance()-wantVar) > 0.03*wantVar {
		t.Errorf("Rayleigh var = %v, want %v", r.Variance(), wantVar)
	}
}

func TestComplexCNVariance(t *testing.T) {
	rng := NewRand(6)
	var p Running
	for i := 0; i < 200000; i++ {
		z := ComplexCN(rng, 3.0)
		p.Add(real(z)*real(z) + imag(z)*imag(z))
	}
	if math.Abs(p.Mean()-3) > 0.05 {
		t.Errorf("CN power = %v, want 3", p.Mean())
	}
}

func TestRicianLimits(t *testing.T) {
	rng := NewRand(7)
	// K=0 should match Rayleigh with omega=1: mean sqrt(pi)/2.
	var r Running
	for i := 0; i < 200000; i++ {
		r.Add(Rician(rng, 0, 1))
	}
	want := math.Sqrt(math.Pi) / 2
	if math.Abs(r.Mean()-want) > 0.02 {
		t.Errorf("Rician K=0 mean = %v, want %v", r.Mean(), want)
	}
	// Large K approaches deterministic amplitude sqrt(omega).
	var h Running
	for i := 0; i < 50000; i++ {
		h.Add(Rician(rng, 1e6, 4))
	}
	if math.Abs(h.Mean()-2) > 0.01 {
		t.Errorf("Rician K->inf mean = %v, want 2", h.Mean())
	}
	if h.StdDev() > 0.01 {
		t.Errorf("Rician K->inf stddev = %v, want ~0", h.StdDev())
	}
	// Mean-square power equals omega for any K.
	var p Running
	for i := 0; i < 200000; i++ {
		x := Rician(rng, 3, 2.5)
		p.Add(x * x)
	}
	if math.Abs(p.Mean()-2.5) > 0.05 {
		t.Errorf("Rician power = %v, want 2.5", p.Mean())
	}
	// Negative K is clamped to Rayleigh rather than producing NaN.
	if v := Rician(rng, -1, 1); math.IsNaN(v) || v < 0 {
		t.Errorf("Rician with negative K = %v", v)
	}
}

func TestExpVariate(t *testing.T) {
	rng := NewRand(8)
	var r Running
	for i := 0; i < 200000; i++ {
		r.Add(ExpVariate(rng, 4))
	}
	if math.Abs(r.Mean()-4) > 0.1 {
		t.Errorf("Exp mean = %v, want 4", r.Mean())
	}
}

func TestSplitMix64Sequence(t *testing.T) {
	var s uint64 = 0
	a := SplitMix64(&s)
	b := SplitMix64(&s)
	if a == b {
		t.Error("splitmix64 repeated")
	}
	// Known first output for state 0 (reference value of splitmix64).
	var z uint64 = 0
	if got := SplitMix64(&z); got != 0xe220a8397b1dcdaf {
		t.Errorf("splitmix64(0) = %#x, want 0xe220a8397b1dcdaf", got)
	}
}
