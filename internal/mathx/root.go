package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket reports that a root finder was given an interval whose
// endpoints do not straddle a sign change.
var ErrNoBracket = errors.New("mathx: f(a) and f(b) have the same sign")

// Bisect finds x in [a, b] with f(x) = 0 to within tol using bisection.
// f(a) and f(b) must have opposite signs. Bisection is used for the
// ebtable inversion because the Monte-Carlo BER estimate is monotone in
// the transmit energy but noisy enough that derivative-based methods
// misbehave.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	for i := 0; i < 200 && b-a > tol; i++ {
		m := a + (b-a)/2
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return a + (b-a)/2, nil
}

// BisectLog runs bisection on a logarithmic grid, converging when the
// interval's ratio b/a falls below 1+rtol. It suits quantities spanning
// many decades, such as per-bit energies between 1e-21 and 1e-12 J.
func BisectLog(f func(float64) float64, a, b, rtol float64) (float64, error) {
	if a <= 0 || b <= 0 || a >= b {
		return 0, fmt.Errorf("mathx: BisectLog needs 0 < a < b, got [%g, %g]", a, b)
	}
	g := func(u float64) float64 { return f(math.Exp(u)) }
	u, err := Bisect(g, math.Log(a), math.Log(b), math.Log1p(rtol))
	if err != nil {
		return 0, err
	}
	return math.Exp(u), nil
}

// Brent finds a root of f in [a, b] using Brent's method: inverse
// quadratic interpolation with bisection fallback. It converges much
// faster than Bisect for smooth deterministic functions, e.g. the
// distance inversions of the overlay analysis (Section 6.1).
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, nil
}

// MinimizeGrid evaluates f on n+1 evenly spaced points of [a, b] and
// returns the abscissa and value of the minimum. The constellation-size
// optimisation of the paper is a small discrete search, but several
// analyses also need a coarse continuous minimiser; this keeps both honest
// and deterministic.
func MinimizeGrid(f func(float64) float64, a, b float64, n int) (x, fx float64) {
	if n < 1 {
		n = 1
	}
	bestX, bestF := a, f(a)
	for i := 1; i <= n; i++ {
		xi := a + (b-a)*float64(i)/float64(n)
		fi := f(xi)
		if fi < bestF {
			bestX, bestF = xi, fi
		}
	}
	return bestX, bestF
}
