package mathx

import (
	"math"
	"sort"
)

// Running accumulates streaming mean and variance using Welford's
// algorithm. It is the reduction primitive for every Monte-Carlo loop in
// the repository: workers keep independent Running values and merge them
// deterministically at the end.
type Running struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Merge combines another accumulator into r (Chan et al. parallel update),
// so per-worker statistics reduce without reprocessing samples.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n1, n2 := float64(r.n), float64(o.n)
	d := o.mean - r.mean
	tot := n1 + n2
	r.mean += d * n2 / tot
	r.m2 += o.m2 + d*d*n1*n2/tot
	r.n += o.n
}

// RunningSnapshot is the exported state of a Running accumulator, for
// serialisation across process boundaries. JSON float64 encoding uses
// the shortest round-tripping representation, so a snapshot that crosses
// the wire restores the exact bits — the property the distributed
// Monte-Carlo merge (internal/cluster) depends on.
type RunningSnapshot struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// Snapshot exports the accumulator state.
func (r *Running) Snapshot() RunningSnapshot {
	return RunningSnapshot{N: r.n, Mean: r.mean, M2: r.m2}
}

// RunningFromSnapshot rebuilds an accumulator from exported state.
// RunningFromSnapshot(r.Snapshot()) is bit-identical to r.
func RunningFromSnapshot(s RunningSnapshot) Running {
	return Running{n: s.N, mean: s.Mean, m2: s.M2}
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (zero before any observation).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval around the mean. Experiment reports quote mean ± CI95.
func (r *Running) CI95() float64 { return 1.959963984540054 * r.StdErr() }

// Mean computes the arithmetic mean of xs (zero for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Quantile returns the q-th quantile (q in [0, 1]) of an ascending
// sorted slice, linearly interpolating between order statistics —
// Quantile(sorted, 0.5) equals Median. The caller sorts so hot loops
// can reuse one scratch slice across calls.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if frac == 0 || lo+1 >= n {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// MinMax returns the extrema of xs; it panics on an empty slice because
// callers always operate on freshly generated sweeps.
func MinMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
