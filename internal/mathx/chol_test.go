package mathx

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveMul is the reference product: the textbook triple loop with no
// skip-zero shortcuts, accumulating in source order. The large-dimension
// property tests pin the optimized kernels against it because the
// cell-free workloads are the first to exercise 100x400 shapes.
func naiveMul(a, b *CMat) *CMat {
	c := NewCMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			for j := 0; j < b.Cols; j++ {
				c.Data[i*c.Cols+j] += a.At(i, k) * b.At(k, j)
			}
		}
	}
	return c
}

func TestMulIntoLargeMatchesNaive(t *testing.T) {
	rng := NewRand(7)
	a := NewCMat(100, 400).RandCN(rng)
	b := NewCMat(400, 100).RandCN(rng)
	// Sprinkle exact zeros so MulInto's skip-zero branch is on the path.
	for i := 0; i < 400; i++ {
		a.Data[rng.Intn(len(a.Data))] = 0
	}
	got := a.Mul(b)
	want := naiveMul(a, b)
	// The skip-zero shortcut elides exact-zero terms, which cannot
	// change a finite sum, so equality is exact.
	if !got.Equal(want, 0) {
		t.Fatal("MulInto at 100x400 diverged from the naive reference")
	}
}

func TestTransposeIntoLarge(t *testing.T) {
	rng := NewRand(8)
	a := NewCMat(100, 400).RandCN(rng)
	tr := a.TransposeInto(nil)
	ct := a.ConjTransposeInto(nil)
	if tr.Rows != 400 || tr.Cols != 100 || ct.Rows != 400 || ct.Cols != 100 {
		t.Fatalf("transpose dims: %dx%d / %dx%d", tr.Rows, tr.Cols, ct.Rows, ct.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if tr.At(j, i) != a.At(i, j) {
				t.Fatalf("TransposeInto(%d,%d) drifted", i, j)
			}
			if ct.At(j, i) != cmplx.Conj(a.At(i, j)) {
				t.Fatalf("ConjTransposeInto(%d,%d) drifted", i, j)
			}
		}
	}
	// Round trip: (A^T)^T = A, exactly.
	if !tr.TransposeInto(nil).Equal(a, 0) {
		t.Fatal("double transpose is not the identity")
	}
}

// randomHPD builds a well-conditioned Hermitian positive-definite
// matrix A = B B^H + n I (full matrix, so tests can also multiply
// with it even though Factor only reads the lower triangle).
func randomHPD(rng *rand.Rand, n int) *CMat {
	b := NewCMat(n, n).RandCN(rng)
	a := b.Mul(b.ConjTranspose())
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+complex(float64(n), 0))
	}
	return a
}

func TestCholeskySolveLarge(t *testing.T) {
	const n = 120
	rng := NewRand(9)
	a := randomHPD(rng, n)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b := a.MulVec(x)

	var ch Cholesky
	if err := ch.Factor(a); err != nil {
		t.Fatal(err)
	}
	// L L^H must reproduce A.
	l := NewCMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			l.Set(i, j, ch.L.At(i, j))
		}
	}
	if !l.Mul(l.ConjTranspose()).Equal(a, 1e-8*float64(n)) {
		t.Fatal("L L^H does not reproduce A")
	}

	got := ch.SolveVecInto(nil, b)
	for i := range x {
		if cmplx.Abs(got[i]-x[i]) > 1e-8 {
			t.Fatalf("solve[%d] = %v, want %v", i, got[i], x[i])
		}
	}
}

// TestCholeskySolveBatchBitIdentical pins the property the cell-free
// combiner relies on: solving k right-hand sides through the lane-major
// batch path yields bit-for-bit the vectors the scalar solver produces.
func TestCholeskySolveBatchBitIdentical(t *testing.T) {
	const n, k = 100, 40
	rng := NewRand(10)
	a := randomHPD(rng, n)
	var ch Cholesky
	if err := ch.Factor(a); err != nil {
		t.Fatal(err)
	}

	rhs := NewBatchCF64(n, k)
	cols := make([][]complex128, k)
	for j := 0; j < k; j++ {
		cols[j] = make([]complex128, n)
		for i := 0; i < n; i++ {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			cols[j][i] = v
			rhs.Set(i, j, v)
		}
	}
	ch.SolveBatchInto(rhs)
	for j := 0; j < k; j++ {
		want := ch.SolveVecInto(nil, cols[j])
		for i := 0; i < n; i++ {
			if rhs.At(i, j) != want[i] {
				t.Fatalf("batch solve col %d row %d: %v != %v", j, i, rhs.At(i, j), want[i])
			}
		}
	}
}

func TestCholeskyFactorInPlace(t *testing.T) {
	const n = 60
	rng := NewRand(11)
	a := randomHPD(rng, n)
	ref := a.Clone()

	var out Cholesky
	if err := out.Factor(a); err != nil {
		t.Fatal(err)
	}
	inplace := Cholesky{L: ref}
	if err := inplace.Factor(ref); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if out.L.At(i, j) != inplace.L.At(i, j) {
				t.Fatalf("in-place factor (%d,%d) differs", i, j)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewCMat(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 0, 0)
	a.Set(1, 1, -1) // negative pivot
	var ch Cholesky
	if err := ch.Factor(a); err == nil {
		t.Fatal("factored an indefinite matrix")
	}
	r := NewCMat(2, 3)
	if err := ch.Factor(r); err == nil {
		t.Fatal("factored a non-square matrix")
	}
}
