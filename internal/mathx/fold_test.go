package mathx

import (
	"encoding/json"
	"math"
	"testing"
)

// These tests pin the invariant checkpoint resume (internal/campaign)
// leans on: a Monte-Carlo result is a strict left-to-right fold of
// per-chunk Running partials, and that fold can be cut at ANY chunk
// boundary, its prefix partials serialised to JSON and restored, and
// the continued fold still produces bit-identical state. Checkpoints
// therefore store the per-chunk snapshot list — never pre-merged
// prefixes — so a resumed fold replays the exact same operation
// sequence as an uninterrupted one.

// chunkPartials builds nChunks Running accumulators over pseudo-random
// observations, the same shape sim's kernel runners produce.
func chunkPartials(seed int64, nChunks, perChunk int) []Running {
	rng := NewRand(seed)
	parts := make([]Running, nChunks)
	for i := range parts {
		for j := 0; j < perChunk; j++ {
			// Mix magnitudes so merges exercise non-trivial rounding.
			x := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			parts[i].Add(x)
		}
	}
	return parts
}

// foldLeft merges partials strictly left-to-right, exactly as
// sim.RunKernelCtx does.
func foldLeft(parts []Running) Running {
	var total Running
	for _, p := range parts {
		total.Merge(p)
	}
	return total
}

func bitsEqual(a, b Running) bool {
	sa, sb := a.Snapshot(), b.Snapshot()
	return sa.N == sb.N &&
		math.Float64bits(sa.Mean) == math.Float64bits(sb.Mean) &&
		math.Float64bits(sa.M2) == math.Float64bits(sb.M2)
}

// TestFoldResumeBitIdenticalAtEverySplit cuts the fold at every chunk
// boundary k, round-trips the first k partials through JSON (the
// checkpoint encoding), and folds the restored prefix plus the live
// suffix. Every split point must reproduce the golden fold exactly.
func TestFoldResumeBitIdenticalAtEverySplit(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 12345} {
		parts := chunkPartials(seed, 16, 64)
		golden := foldLeft(parts)
		for k := 0; k <= len(parts); k++ {
			snaps := make([]RunningSnapshot, k)
			for i := 0; i < k; i++ {
				snaps[i] = parts[i].Snapshot()
			}
			data, err := json.Marshal(snaps)
			if err != nil {
				t.Fatal(err)
			}
			var restored []RunningSnapshot
			if err := json.Unmarshal(data, &restored); err != nil {
				t.Fatal(err)
			}
			var resumed Running
			for _, s := range restored {
				r := RunningFromSnapshot(s)
				resumed.Merge(r)
			}
			for _, p := range parts[k:] {
				resumed.Merge(p)
			}
			if !bitsEqual(resumed, golden) {
				t.Fatalf("seed %d split %d: resumed fold differs from golden: %+v vs %+v",
					seed, k, resumed.Snapshot(), golden.Snapshot())
			}
		}
	}
}

// TestFoldIndependentOfCheckpointInterval reruns the fold under every
// checkpoint interval (how many chunks land in one checkpoint write):
// the grouping only changes WHEN snapshots hit disk, never the fold
// order, so all intervals must agree bit-for-bit.
func TestFoldIndependentOfCheckpointInterval(t *testing.T) {
	parts := chunkPartials(99, 24, 32)
	golden := foldLeft(parts)
	for every := 1; every <= len(parts); every++ {
		// Simulate the runner: compute chunks in ranges of `every`,
		// checkpointing (serialising) each range's per-chunk partials.
		var ckpt []RunningSnapshot
		for lo := 0; lo < len(parts); lo += every {
			hi := lo + every
			if hi > len(parts) {
				hi = len(parts)
			}
			for _, p := range parts[lo:hi] {
				ckpt = append(ckpt, p.Snapshot())
			}
		}
		data, err := json.Marshal(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		var restored []RunningSnapshot
		if err := json.Unmarshal(data, &restored); err != nil {
			t.Fatal(err)
		}
		var total Running
		for _, s := range restored {
			r := RunningFromSnapshot(s)
			total.Merge(r)
		}
		if !bitsEqual(total, golden) {
			t.Fatalf("interval %d: fold differs from golden", every)
		}
	}
}

// TestSnapshotJSONRoundTripExact pins the encoding property underneath
// all of the above: Go's float64 JSON encoding is the shortest
// round-tripping decimal, so restored snapshots carry the exact bits —
// including denormals, extremes and negative zero.
func TestSnapshotJSONRoundTripExact(t *testing.T) {
	values := []float64{
		0, math.Copysign(0, -1), 1.0 / 3.0, math.Pi,
		math.SmallestNonzeroFloat64, math.MaxFloat64,
		4.9406564584124654e-320, // subnormal
		0.1 + 0.2,               // classic non-representable sum
		-1e-308, 6.02214076e23,
	}
	for _, mean := range values {
		for _, m2 := range values {
			s := RunningSnapshot{N: 12345, Mean: mean, M2: m2}
			data, err := json.Marshal(s)
			if err != nil {
				t.Fatal(err)
			}
			var back RunningSnapshot
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}
			if back.N != s.N ||
				math.Float64bits(back.Mean) != math.Float64bits(s.Mean) ||
				math.Float64bits(back.M2) != math.Float64bits(s.M2) {
				t.Fatalf("round trip changed bits: %+v -> %s -> %+v", s, data, back)
			}
		}
	}
}
