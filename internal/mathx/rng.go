package mathx

import (
	"math"
	"math/rand"
)

// NewRand returns a deterministic *rand.Rand for the given seed.
// Every stochastic component in the repository takes an injected source
// so experiments replay bit-for-bit.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// ReusableRand couples a *rand.Rand with its source so hot paths can
// re-seed one generator per run instead of allocating a fresh one.
// Reseed(s) yields exactly the stream NewRand(s) would, so pooled
// workspaces preserve bit-identical reproducibility.
type ReusableRand struct {
	Rand *rand.Rand
	src  rand.Source
}

// NewReusableRand returns a reusable generator; call Reseed before use.
func NewReusableRand() *ReusableRand {
	src := rand.NewSource(0)
	return &ReusableRand{Rand: rand.New(src), src: src}
}

// Reseed resets the generator to the deterministic stream of seed.
func (r *ReusableRand) Reseed(seed int64) { r.src.Seed(seed) }

// SplitMix64 advances a splitmix64 state and returns the next value.
// It is used to derive statistically independent per-worker seeds from a
// single experiment seed without the correlation hazards of seed+i.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeeds expands one master seed into n child seeds via splitmix64.
func DeriveSeeds(master int64, n int) []int64 {
	state := uint64(master)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(SplitMix64(&state))
	}
	return out
}

// Rayleigh draws a Rayleigh(sigma) variate: the envelope of a
// circularly-symmetric complex Gaussian with per-component deviation sigma.
func Rayleigh(rng *rand.Rand, sigma float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return sigma * math.Sqrt(-2*math.Log(u))
}

// ComplexCN draws CN(0, variance): total variance split evenly across the
// real and imaginary parts.
func ComplexCN(rng *rand.Rand, variance float64) complex128 {
	s := math.Sqrt(variance / 2)
	return complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
}

// Rician draws the envelope of a Rician channel with K-factor k (linear)
// and total mean-square power omega. K = 0 degenerates to Rayleigh; large
// K approaches a deterministic line-of-sight gain. Indoor testbed channels
// (Section 6.4) use small K to model a partially obstructed path.
func Rician(rng *rand.Rand, k, omega float64) float64 {
	if k < 0 {
		k = 0
	}
	nu := math.Sqrt(k * omega / (k + 1))      // LOS amplitude
	sigma := math.Sqrt(omega / (2 * (k + 1))) // scatter per component
	re := nu + rng.NormFloat64()*sigma
	im := rng.NormFloat64() * sigma
	return math.Hypot(re, im)
}

// ExpVariate draws an exponential variate with the given mean.
func ExpVariate(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}
