package mathx

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCMatBasics(t *testing.T) {
	m := NewCMat(2, 3)
	m.Set(0, 0, 1+2i)
	m.Set(1, 2, -3i)
	if m.At(0, 0) != 1+2i || m.At(1, 2) != -3i || m.At(0, 1) != 0 {
		t.Error("Set/At mismatch")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1+2i {
		t.Error("Clone aliases data")
	}
}

func TestCMatInvalidDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCMat(0, 1) should panic")
		}
	}()
	NewCMat(0, 1)
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewCMat(2, 2)
	m.Set(0, 0, 3)
	m.Set(0, 1, 4i)
	if got := m.FrobeniusNorm2(); got != 25 {
		t.Errorf("FrobeniusNorm2 = %v", got)
	}
	if got := m.FrobeniusNorm(); got != 5 {
		t.Errorf("FrobeniusNorm = %v", got)
	}
}

func TestConjTranspose(t *testing.T) {
	m := NewCMat(2, 3)
	m.Set(0, 1, 1+2i)
	m.Set(1, 0, -1i)
	h := m.ConjTranspose()
	if h.Rows != 3 || h.Cols != 2 {
		t.Fatalf("dims %dx%d", h.Rows, h.Cols)
	}
	if h.At(1, 0) != 1-2i || h.At(0, 1) != 1i {
		t.Error("conjugate transpose wrong")
	}
	// (M^H)^H == M
	if !h.ConjTranspose().Equal(m, 0) {
		t.Error("double conjugate transpose differs")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := NewRand(1)
	m := NewCMat(3, 3).RandCN(rng)
	id := NewCMat(3, 3)
	for i := 0; i < 3; i++ {
		id.Set(i, i, 1)
	}
	if !m.Mul(id).Equal(m, 1e-15) || !id.Mul(m).Equal(m, 1e-15) {
		t.Error("identity product differs")
	}
}

func TestMulKnown(t *testing.T) {
	a := NewCMat(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1i)
	a.Set(1, 0, 2)
	a.Set(1, 1, 0)
	b := NewCMat(2, 1)
	b.Set(0, 0, 3)
	b.Set(1, 0, 1-1i)
	p := a.Mul(b)
	// row0: 3 + i(1-i) = 3 + i + 1 = 4+i ; row1: 6
	if p.At(0, 0) != 4+1i || p.At(1, 0) != 6 {
		t.Errorf("Mul wrong: %v", p)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := NewRand(7)
	m := NewCMat(3, 4).RandCN(rng)
	x := make([]complex128, 4)
	for i := range x {
		x[i] = ComplexCN(rng, 1)
	}
	col := NewCMat(4, 1)
	copy(col.Data, x)
	want := m.Mul(col)
	got := m.MulVec(x)
	for i := range got {
		if d := got[i] - want.At(i, 0); math.Hypot(real(d), imag(d)) > 1e-12 {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestMulDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dim mismatch should panic")
		}
	}()
	NewCMat(2, 3).Mul(NewCMat(2, 3))
}

func TestScale(t *testing.T) {
	m := NewCMat(1, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2i)
	m.Scale(2i)
	if m.At(0, 0) != 2i || m.At(0, 1) != -4 {
		t.Error("Scale wrong")
	}
}

func TestRandCNStatistics(t *testing.T) {
	rng := NewRand(42)
	m := NewCMat(100, 100).RandCN(rng)
	// E||H||_F^2 = rows*cols for unit-variance entries.
	got := m.FrobeniusNorm2() / 1e4
	if math.Abs(got-1) > 0.05 {
		t.Errorf("mean |h|^2 = %v, want ~1", got)
	}
	// Real and imaginary parts should each carry half the power.
	var re2 float64
	for _, v := range m.Data {
		re2 += real(v) * real(v)
	}
	if r := re2 / m.FrobeniusNorm2(); math.Abs(r-0.5) > 0.03 {
		t.Errorf("real-part power fraction = %v, want ~0.5", r)
	}
}

func TestFrobeniusInvariantUnderTranspose(t *testing.T) {
	f := func(seed int64) bool {
		m := NewCMat(3, 2).RandCN(NewRand(seed))
		return math.Abs(m.FrobeniusNorm2()-m.ConjTranspose().FrobeniusNorm2()) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	m := NewCMat(1, 1)
	m.Set(0, 0, 1+2i)
	if s := m.String(); !strings.Contains(s, "1.000") || !strings.Contains(s, "2.000") {
		t.Errorf("String = %q", s)
	}
}
