package mathx

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// CMat is a dense complex matrix stored row-major. It is deliberately
// small-scale: cooperative-MIMO channel matrices are at most 4x4, so a
// flat slice with explicit indices beats any clever layout.
type CMat struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMat allocates an r-by-c zero matrix.
func NewCMat(r, c int) *CMat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mathx: invalid CMat dims %dx%d", r, c))
	}
	return &CMat{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// At returns element (i, j).
func (m *CMat) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *CMat) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *CMat) Clone() *CMat {
	c := NewCMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every entry to zero and returns m.
func (m *CMat) Zero() *CMat {
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// EnsureShape resizes dst to r-by-c, reusing its backing slice when it
// has capacity, and returns dst (allocating a new matrix when dst is
// nil). Contents are unspecified after the call; it exists so hot loops
// can keep one scratch matrix across shape changes.
func EnsureShape(dst *CMat, r, c int) *CMat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mathx: invalid CMat dims %dx%d", r, c))
	}
	if dst == nil {
		return NewCMat(r, c)
	}
	if cap(dst.Data) < r*c {
		dst.Data = make([]complex128, r*c)
	}
	dst.Rows, dst.Cols, dst.Data = r, c, dst.Data[:r*c]
	return dst
}

// FrobeniusNorm2 returns ||M||_F^2 = sum |m_ij|^2. The paper's receive
// SNR gamma_b is proportional to ||H||_F^2 (Section 2.3, eq. 5/6).
func (m *CMat) FrobeniusNorm2() float64 {
	s := 0.0
	for _, v := range m.Data {
		re, im := real(v), imag(v)
		s += re*re + im*im
	}
	return s
}

// FrobeniusNorm returns ||M||_F.
func (m *CMat) FrobeniusNorm() float64 { return math.Sqrt(m.FrobeniusNorm2()) }

// Transpose returns M^T without conjugation.
func (m *CMat) Transpose() *CMat {
	return m.TransposeInto(nil)
}

// TransposeInto writes M^T into dst (reshaped as needed; allocated when
// nil) and returns it. dst must not alias m.
func (m *CMat) TransposeInto(dst *CMat) *CMat {
	dst = EnsureShape(dst, m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			dst.Set(j, i, m.At(i, j))
		}
	}
	return dst
}

// ConjTranspose returns M^H.
func (m *CMat) ConjTranspose() *CMat {
	return m.ConjTransposeInto(nil)
}

// ConjTransposeInto writes M^H into dst (reshaped as needed; allocated
// when nil) and returns it. dst must not alias m.
func (m *CMat) ConjTransposeInto(dst *CMat) *CMat {
	dst = EnsureShape(dst, m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			dst.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return dst
}

// Mul returns the matrix product m*o.
func (m *CMat) Mul(o *CMat) *CMat {
	return m.MulInto(o, nil)
}

// MulInto writes m*o into dst (reshaped as needed; allocated when nil)
// and returns it. dst must not alias m or o.
func (m *CMat) MulInto(o, dst *CMat) *CMat {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("mathx: CMat dims mismatch %dx%d * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	dst = EnsureShape(dst, m.Rows, o.Cols).Zero()
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				dst.Data[i*dst.Cols+j] += a * o.At(k, j)
			}
		}
	}
	return dst
}

// MulVec returns M*x for a column vector x.
func (m *CMat) MulVec(x []complex128) []complex128 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mathx: CMat.MulVec dim mismatch %d vs %d", len(x), m.Cols))
	}
	y := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s complex128
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * x[j]
		}
		y[i] = s
	}
	return y
}

// Scale multiplies every entry by a in place and returns m.
func (m *CMat) Scale(a complex128) *CMat {
	for i := range m.Data {
		m.Data[i] *= a
	}
	return m
}

// RandCN fills the matrix with iid circularly-symmetric complex Gaussian
// entries CN(0, 1) — the flat Rayleigh fading assumption of the paper —
// drawn from rng, and returns m.
func (m *CMat) RandCN(rng *rand.Rand) *CMat {
	const s = 1 / math.Sqrt2
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
	}
	return m
}

// Equal reports elementwise equality within tol on both components.
func (m *CMat) Equal(o *CMat, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		w := o.Data[i]
		if math.Abs(real(v)-real(w)) > tol || math.Abs(imag(v)-imag(w)) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging and failed-test output.
func (m *CMat) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%8.3f%+8.3fi ", real(m.At(i, j)), imag(m.At(i, j)))
		}
		s += "\n"
	}
	return s
}
