package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1, 0.15865525393145707},
		{2, 0.022750131948179195},
		{3, 0.0013498980316300933},
		{-1, 0.8413447460685429},
		{6, 9.865876450376946e-10},
	}
	for _, c := range cases {
		if got := Q(c.x); math.Abs(got-c.want) > 1e-12*math.Max(1, math.Abs(c.want)/1e-3) {
			t.Errorf("Q(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestQMonotoneDecreasing(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 10)
		b = math.Mod(b, 10)
		if math.IsNaN(a) || math.IsNaN(b) || a == b {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Q(a) >= Q(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQInvRoundTrip(t *testing.T) {
	for _, p := range []float64{0.5, 0.4, 0.1, 0.01, 1e-3, 1e-5, 1e-9, 0.9, 0.9999} {
		x := QInv(p)
		if got := Q(x); math.Abs(got-p) > 1e-10*math.Max(p, 1e-10) && math.Abs(got-p) > 1e-12 {
			t.Errorf("Q(QInv(%v)) = %v", p, got)
		}
	}
}

func TestQInvDomain(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1, math.NaN()} {
		if x := QInv(p); !math.IsNaN(x) {
			t.Errorf("QInv(%v) = %v, want NaN", p, x)
		}
	}
	if x := QInv(0.5); x != 0 {
		t.Errorf("QInv(0.5) = %v, want 0", x)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}
