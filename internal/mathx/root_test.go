package mathx

import (
	"errors"
	"math"
	"testing"
)

func TestBisectSimple(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	x, err := Bisect(f, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-10 {
		t.Errorf("Bisect sqrt(2) = %v", x)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if x, err := Bisect(f, 0, 1, 1e-12); err != nil || x != 0 {
		t.Errorf("Bisect endpoint root: x=%v err=%v", x, err)
	}
	if x, err := Bisect(f, -1, 0, 1e-12); err != nil || x != 0 {
		t.Errorf("Bisect endpoint root: x=%v err=%v", x, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-9); !errors.Is(err, ErrNoBracket) {
		t.Errorf("expected ErrNoBracket, got %v", err)
	}
}

func TestBisectLog(t *testing.T) {
	// Root at 1e-18, interval spanning 12 decades.
	f := func(x float64) float64 { return math.Log10(x) + 18 }
	x, err := BisectLog(f, 1e-24, 1e-12, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x/1e-18-1) > 1e-6 {
		t.Errorf("BisectLog root = %v, want 1e-18", x)
	}
}

func TestBisectLogBadInterval(t *testing.T) {
	f := func(x float64) float64 { return x }
	for _, iv := range [][2]float64{{-1, 1}, {0, 1}, {2, 1}} {
		if _, err := BisectLog(f, iv[0], iv[1], 1e-9); err == nil {
			t.Errorf("BisectLog(%v) should fail", iv)
		}
	}
}

func TestBrent(t *testing.T) {
	cases := []struct {
		f    func(float64) float64
		a, b float64
		root float64
	}{
		{func(x float64) float64 { return x*x*x - x - 2 }, 1, 2, 1.5213797068045676},
		{func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 0.7390851332151607},
		{func(x float64) float64 { return math.Exp(x) - 10 }, 0, 5, math.Log(10)},
	}
	for i, c := range cases {
		x, err := Brent(c.f, c.a, c.b, 1e-13)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(x-c.root) > 1e-9 {
			t.Errorf("case %d: Brent = %v, want %v", i, x, c.root)
		}
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 }, 0, 1, 1e-9); !errors.Is(err, ErrNoBracket) {
		t.Errorf("expected ErrNoBracket, got %v", err)
	}
}

func TestBrentMatchesBisect(t *testing.T) {
	f := func(x float64) float64 { return math.Tanh(x-3) + 0.5 }
	xb, err1 := Bisect(f, 0, 10, 1e-12)
	xr, err2 := Brent(f, 0, 10, 1e-12)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(xb-xr) > 1e-8 {
		t.Errorf("Bisect=%v Brent=%v disagree", xb, xr)
	}
}

func TestMinimizeGrid(t *testing.T) {
	f := func(x float64) float64 { return (x - 0.3) * (x - 0.3) }
	x, fx := MinimizeGrid(f, 0, 1, 1000)
	if math.Abs(x-0.3) > 2e-3 {
		t.Errorf("MinimizeGrid x = %v", x)
	}
	if fx > 1e-5 {
		t.Errorf("MinimizeGrid fx = %v", fx)
	}
	// n < 1 falls back to endpoints only.
	x, _ = MinimizeGrid(f, 0, 1, 0)
	if x != 0 && x != 1 {
		t.Errorf("MinimizeGrid degenerate x = %v", x)
	}
}
