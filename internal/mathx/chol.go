package mathx

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Cholesky is the lower-triangular factorization A = L L^H of a
// Hermitian positive-definite matrix. It is the linear-algebra
// workhorse of the cell-free MMSE combiners (internal/cellfree), where
// A is a per-cluster Gram matrix of up to a few hundred dimensions —
// two orders of magnitude beyond the 4x4 matrices the cooperative-hop
// kernels solve — so the factor and solves reuse their buffers the same
// way the small-matrix hot paths do.
type Cholesky struct {
	// L holds the lower-triangular factor; entries above the diagonal
	// are left untouched scratch and must not be read.
	L *CMat
}

// Factor computes the Cholesky factorization of a, which must be
// Hermitian positive definite; only a's lower triangle (diagonal
// included) is read, so callers may leave the strict upper triangle
// unfilled. The factor is written into c.L (reshaped via EnsureShape,
// allocated when nil), and a is not modified unless c.L aliases it —
// in-place factorization via c.L == a is allowed. A non-positive pivot
// reports an error naming the failing dimension.
func (c *Cholesky) Factor(a *CMat) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("mathx: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	if c.L != a {
		c.L = EnsureShape(c.L, n, n)
	}
	l := c.L
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			// s = a_ij - sum_{k<j} l_ik * conj(l_jk), rows of the factor
			// built left to right so the in-place case reads only
			// finished entries.
			s := a.Data[i*a.Cols+j]
			li := l.Data[i*n:]
			lj := l.Data[j*n:]
			for k := 0; k < j; k++ {
				s -= li[k] * cmplx.Conj(lj[k])
			}
			if i == j {
				re := real(s)
				if !(re > 0) || math.Abs(imag(s)) > 1e-9*math.Max(1, re) {
					return fmt.Errorf("mathx: Cholesky pivot %d not positive definite (got %v)", i, s)
				}
				l.Data[i*n+j] = complex(math.Sqrt(re), 0)
			} else {
				l.Data[i*n+j] = s / lj[j]
			}
		}
	}
	return nil
}

// SolveVecInto solves A x = b for one right-hand side using the
// computed factor, writing x into dst (which may alias b) and returning
// it. dst is grown as needed.
func (c *Cholesky) SolveVecInto(dst, b []complex128) []complex128 {
	n := c.L.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mathx: Cholesky solve dim mismatch %d vs %d", len(b), n))
	}
	if cap(dst) < n {
		dst = make([]complex128, n)
	}
	dst = dst[:n]
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	l := c.L
	// Forward substitution L y = b.
	for i := 0; i < n; i++ {
		s := dst[i]
		li := l.Data[i*n:]
		for k := 0; k < i; k++ {
			s -= li[k] * dst[k]
		}
		dst[i] = s / li[i]
	}
	// Back substitution L^H x = y.
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for k := i + 1; k < n; k++ {
			s -= cmplx.Conj(l.Data[k*n+i]) * dst[k]
		}
		dst[i] = s / l.Data[i*n+i]
	}
	return dst
}

// SolveBatchInto solves A X = B for many right-hand sides at once,
// in place: rhs holds the vectors lane-major (lane r is component r of
// every right-hand side, rhs.N vectors wide), exactly the BatchCF64
// staging layout of the batched trial kernels. On return the same
// buffer holds the solutions. The per-column operation order matches
// SolveVecInto, so batch solutions are bit-identical to one-at-a-time
// solves — the property the cell-free golden tests lean on when UEs
// sharing a cooperation cluster share one factorization.
func (c *Cholesky) SolveBatchInto(rhs *BatchCF64) {
	n := c.L.Rows
	if rhs.Lanes != n {
		panic(fmt.Sprintf("mathx: Cholesky batch solve dim mismatch %d vs %d", rhs.Lanes, n))
	}
	l := c.L
	w := rhs.N
	// Forward substitution, all columns per row: the inner loops walk
	// contiguous lanes, which keeps them long and branch-free.
	for i := 0; i < n; i++ {
		xi := rhs.Data[i*w : (i+1)*w]
		li := l.Data[i*n:]
		for k := 0; k < i; k++ {
			a := li[k]
			xk := rhs.Data[k*w : (k+1)*w]
			for j := range xi {
				xi[j] -= a * xk[j]
			}
		}
		d := li[i]
		for j := range xi {
			xi[j] /= d
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		xi := rhs.Data[i*w : (i+1)*w]
		for k := i + 1; k < n; k++ {
			a := cmplx.Conj(l.Data[k*n+i])
			xk := rhs.Data[k*w : (k+1)*w]
			for j := range xi {
				xi[j] -= a * xk[j]
			}
		}
		d := l.Data[i*n+i]
		for j := range xi {
			xi[j] /= d
		}
	}
}
