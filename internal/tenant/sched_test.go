package tenant

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// drainOrder dequeues everything currently queued (never blocking on
// an empty scheduler) and returns the tenant dispatch order.
func drainOrder(t *testing.T, s *Scheduler[int]) []string {
	t.Helper()
	var order []string
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		_, id, ok := s.Dequeue(ctx)
		cancel()
		if !ok {
			return order
		}
		order = append(order, id)
		s.Done(id)
	}
}

// TestStrideInterleavesTenants pins the anti-starvation property: a
// tenant with a huge backlog and a tenant with one job alternate until
// the small tenant drains, instead of the big backlog going first.
func TestStrideInterleavesTenants(t *testing.T) {
	s := NewScheduler[int](Options{})
	for i := 0; i < 10; i++ {
		if err := s.Enqueue("heavy", i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := s.Enqueue("light", 100+i); err != nil {
			t.Fatal(err)
		}
	}
	order := drainOrder(t, s)
	if len(order) != 12 {
		t.Fatalf("drained %d items, want 12", len(order))
	}
	// Both light jobs must be served within the first few dispatches:
	// stride alternates equal-weight tenants 1:1, so the second light
	// job can be at position 4 at the latest (allowing for the initial
	// tie-break going either way).
	lightDone := 0
	for i, id := range order {
		if id == "light" {
			lightDone++
		}
		if lightDone == 2 {
			if i > 3 {
				t.Fatalf("light tenant's 2nd job served at position %d of %v", i, order)
			}
			break
		}
	}
	if lightDone != 2 {
		t.Fatalf("light jobs served %d times in %v", lightDone, order)
	}
}

// TestWeightsSkewService pins proportional sharing: over a window
// where both tenants stay backlogged, a weight-3 tenant is served ~3x
// as often as a weight-1 tenant.
func TestWeightsSkewService(t *testing.T) {
	s := NewScheduler[int](Options{Weights: map[string]int{"gold": 3}})
	for i := 0; i < 30; i++ {
		if err := s.Enqueue("gold", i); err != nil {
			t.Fatal(err)
		}
		if err := s.Enqueue("bronze", i); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		_, id, ok := s.Dequeue(context.Background())
		if !ok {
			t.Fatal("scheduler empty early")
		}
		counts[id]++
		s.Done(id)
	}
	if counts["gold"] != 15 || counts["bronze"] != 5 {
		t.Fatalf("service split = %v over 20 dispatches, want 3:1 (15:5)", counts)
	}
}

// TestReturningTenantCannotBankCredit: a tenant that sat idle while
// another consumed service re-enters at the current virtual time — it
// does not get a catch-up monopoly.
func TestReturningTenantCannotBankCredit(t *testing.T) {
	s := NewScheduler[int](Options{})
	for i := 0; i < 8; i++ {
		if err := s.Enqueue("busy", i); err != nil {
			t.Fatal(err)
		}
	}
	// Serve four jobs while "idler" is away.
	for i := 0; i < 4; i++ {
		_, id, ok := s.Dequeue(context.Background())
		if !ok || id != "busy" {
			t.Fatalf("dispatch %d = %q, %t", i, id, ok)
		}
		s.Done(id)
	}
	// Idler shows up with a backlog; service must alternate from here,
	// not hand idler four make-up dispatches in a row.
	for i := 0; i < 4; i++ {
		if err := s.Enqueue("idler", 100+i); err != nil {
			t.Fatal(err)
		}
	}
	first4 := map[string]int{}
	for i := 0; i < 4; i++ {
		_, id, ok := s.Dequeue(context.Background())
		if !ok {
			t.Fatal("empty early")
		}
		first4[id]++
		s.Done(id)
	}
	if first4["idler"] > 2 {
		t.Fatalf("returning tenant got %d of the first 4 dispatches: %v", first4["idler"], first4)
	}
}

func TestQueueBounds(t *testing.T) {
	s := NewScheduler[int](Options{QueueDepth: 2, TotalDepth: 3})
	if err := s.Enqueue("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue("a", 3); !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("per-tenant overflow err = %v", err)
	}
	if err := s.Enqueue("b", 1); err != nil {
		t.Fatalf("tenant b blocked by tenant a's bound: %v", err)
	}
	if err := s.Enqueue("c", 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("global overflow err = %v", err)
	}
}

// TestConcurrencyShares: with 2 workers and 2 active tenants, one
// tenant cannot hold both workers while the other has queued work —
// unless it is the only tenant with work (work conservation).
func TestConcurrencyShares(t *testing.T) {
	s := NewScheduler[int](Options{Workers: 2})
	for i := 0; i < 4; i++ {
		if err := s.Enqueue("hog", i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Enqueue("meek", 100); err != nil {
		t.Fatal(err)
	}
	_, id1, _ := s.Dequeue(context.Background())
	_, id2, _ := s.Dequeue(context.Background())
	got := map[string]int{id1: 1}
	got[id2]++
	if got["hog"] != 1 || got["meek"] != 1 {
		t.Fatalf("first two dispatches = %v, want one each", got)
	}
	// meek's job still "running"; hog may exceed its share only because
	// nobody else has queued work now (work conservation).
	_, id3, ok := s.Dequeue(context.Background())
	if !ok || id3 != "hog" {
		t.Fatalf("third dispatch = %q, %t; want hog via work conservation", id3, ok)
	}
	// With meek queued again and hog at 2 running ≥ its share of 1,
	// the next dispatch must be meek.
	if err := s.Enqueue("meek", 101); err != nil {
		t.Fatal(err)
	}
	_, id4, ok := s.Dequeue(context.Background())
	if !ok || id4 != "meek" {
		t.Fatalf("dispatch with hog over share = %q, %t; want meek", id4, ok)
	}
}

func TestDequeueBlocksUntilEnqueue(t *testing.T) {
	s := NewScheduler[string](Options{})
	got := make(chan string, 1)
	go func() {
		v, _, ok := s.Dequeue(context.Background())
		if ok {
			got <- v
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.Enqueue("t", "payload"); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "payload" {
			t.Fatalf("dequeued %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Dequeue never woke after Enqueue")
	}
}

func TestCloseAndDrain(t *testing.T) {
	s := NewScheduler[int](Options{})
	for i := 0; i < 3; i++ {
		if err := s.Enqueue(fmt.Sprintf("t%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := s.Enqueue("t0", 9); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close err = %v", err)
	}
	if _, _, ok := s.Dequeue(context.Background()); ok {
		// Items remain after Close, but pickLocked still dispatches
		// them; Drain is for the shutdown path that wants them failed.
		// A dispatch here is acceptable — put it back conceptually by
		// just checking Drain gets the rest.
		t.Log("dequeue after close dispatched a queued item")
	}
	rest := s.Drain()
	if got := len(rest) + 1; got != 3 && len(rest) != 3 {
		t.Fatalf("drain returned %d items", len(rest))
	}
	if s.Len() != 0 {
		t.Fatalf("len after drain = %d", s.Len())
	}
}

func TestSnapshotsAndActive(t *testing.T) {
	s := NewScheduler[int](Options{Weights: map[string]int{"w2": 2}})
	if got := s.Active(); got != 0 {
		t.Fatalf("active on empty = %d", got)
	}
	for i := 0; i < 3; i++ {
		if err := s.Enqueue("w2", i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Enqueue("w1", 0); err != nil {
		t.Fatal(err)
	}
	if got := s.Active(); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	snap := s.Tenant("w2")
	if snap.Queued != 3 || snap.Weight != 2 || snap.ActiveWeight != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if unknown := s.Tenant("ghost"); unknown.Queued != 0 || unknown.Weight != 1 {
		t.Fatalf("unknown tenant snapshot = %+v", unknown)
	}
	depths := s.Depths()
	if len(depths) != 2 || depths[0].ID != "w1" || depths[1].ID != "w2" {
		t.Fatalf("depths = %+v", depths)
	}
	// One dispatched job moves queued -> running but stays active.
	_, id, _ := s.Dequeue(context.Background())
	if got := s.Active(); got != 2 {
		t.Fatalf("active after dispatch = %d, want 2", got)
	}
	snap = s.Tenant(id)
	if snap.Running != 1 {
		t.Fatalf("running = %+v", snap)
	}
}

// TestSchedulerConcurrentUse hammers the scheduler from many producers
// and consumers under the race detector.
func TestSchedulerConcurrentUse(t *testing.T) {
	s := NewScheduler[int](Options{Workers: 4, QueueDepth: 10000})
	const producers, perProducer = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			id := fmt.Sprintf("t%d", p)
			for i := 0; i < perProducer; i++ {
				if err := s.Enqueue(id, i); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}(p)
	}
	var consumed sync.WaitGroup
	total := producers * perProducer
	counts := make(chan string, total)
	for c := 0; c < 4; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				_, id, ok := s.Dequeue(context.Background())
				if !ok {
					return
				}
				counts <- id
				s.Done(id)
			}
		}()
	}
	wg.Wait()
	// Wait for the backlog to drain, then close so consumers exit.
	deadline := time.Now().Add(10 * time.Second)
	for s.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("backlog stuck at %d", s.Len())
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	consumed.Wait()
	close(counts)
	perTenant := map[string]int{}
	for id := range counts {
		perTenant[id]++
	}
	for p := 0; p < producers; p++ {
		if got := perTenant[fmt.Sprintf("t%d", p)]; got != perProducer {
			t.Errorf("tenant t%d served %d jobs, want %d", p, got, perProducer)
		}
	}
}

// TestDequeueTimedReportsSchedulingWait checks the wait is measured
// from Enqueue to dispatch and carried per item, not per tenant.
func TestDequeueTimedReportsSchedulingWait(t *testing.T) {
	s := NewScheduler[int](Options{})
	if err := s.Enqueue("a", 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := s.Enqueue("a", 2); err != nil {
		t.Fatal(err)
	}

	v, id, wait, ok := s.DequeueTimed(context.Background())
	if !ok || v != 1 || id != "a" {
		t.Fatalf("first dequeue = (%d, %s, %v)", v, id, ok)
	}
	if wait < 20*time.Millisecond {
		t.Fatalf("first item waited %v, want >= 20ms", wait)
	}
	s.Done(id)

	v, _, wait2, ok := s.DequeueTimed(context.Background())
	if !ok || v != 2 {
		t.Fatalf("second dequeue = (%d, %v)", v, ok)
	}
	if wait2 >= wait {
		t.Fatalf("younger item reported longer wait (%v >= %v)", wait2, wait)
	}
	s.Done("a")
}

// TestDequeueTimedZeroOnFailure pins the failure signature: cancelled
// or closed dequeues report zero wait and ok=false.
func TestDequeueTimedZeroOnFailure(t *testing.T) {
	s := NewScheduler[int](Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, wait, ok := s.DequeueTimed(ctx); ok || wait != 0 {
		t.Fatalf("cancelled dequeue = (wait %v, ok %v)", wait, ok)
	}
	s.Close()
	if _, _, _, ok := s.DequeueTimed(context.Background()); ok {
		t.Fatal("closed scheduler dequeued")
	}
}
