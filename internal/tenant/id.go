package tenant

import (
	"errors"
	"fmt"
)

// Header is the HTTP request header that names the submitting tenant.
const Header = "X-Tenant-Id"

// DefaultID is the tenant anonymous submissions are accounted to.
const DefaultID = "default"

// MaxIDLen bounds tenant ids so they stay usable as metric label
// values and log fields.
const MaxIDLen = 64

// ErrBadID reports a tenant id that failed validation.
var ErrBadID = errors.New("tenant: invalid tenant id")

// Canonicalize validates a raw tenant id (typically the X-Tenant-Id
// header) and returns its canonical form. The empty string is the
// anonymous caller and maps to DefaultID. Valid ids are 1–64 bytes of
// letters, digits, '.', '_' and '-' — safe in URLs, metric labels and
// log lines without escaping.
func Canonicalize(raw string) (string, error) {
	if raw == "" {
		return DefaultID, nil
	}
	if len(raw) > MaxIDLen {
		return "", fmt.Errorf("%w: %d bytes exceeds the %d-byte bound", ErrBadID, len(raw), MaxIDLen)
	}
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return "", fmt.Errorf("%w: byte %q at offset %d", ErrBadID, c, i)
		}
	}
	return raw, nil
}
