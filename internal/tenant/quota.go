package tenant

import (
	"math"
	"sync"
	"time"
)

// Quota is one tenant's admission budget: a token bucket refilling at
// Rate jobs/second up to Burst tokens. The zero value disables
// admission control (every submission is admitted).
type Quota struct {
	// Rate is the sustained submission rate in jobs per second;
	// 0 or negative disables the quota.
	Rate float64 `json:"rate"`
	// Burst is the bucket size — how many submissions a tenant may
	// make back-to-back after a quiet period. 0 means ceil(Rate),
	// but at least 1.
	Burst int `json:"burst"`
}

// Enabled reports whether this quota limits anything.
func (q Quota) Enabled() bool { return q.Rate > 0 }

// burst resolves the effective bucket size.
func (q Quota) burst() float64 {
	if q.Burst > 0 {
		return float64(q.Burst)
	}
	return math.Max(1, math.Ceil(q.Rate))
}

// bucket is one tenant's live token state.
type bucket struct {
	tokens float64
	last   time.Time
}

// Limiter applies per-tenant token-bucket admission control. The zero
// value is not usable; call NewLimiter.
type Limiter struct {
	def       Quota
	overrides map[string]Quota
	now       func() time.Time // injectable clock for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

// maxIdleBuckets bounds the bucket table; full buckets are pruned
// beyond it. A pruned bucket recreates as full, which is exactly the
// state a long-idle tenant's bucket would have refilled to.
const maxIdleBuckets = 4096

// NewLimiter builds a Limiter with a default quota and optional
// per-tenant overrides. A nil result means admission control is off
// entirely (no default and no overrides), letting callers skip the
// check cheaply.
func NewLimiter(def Quota, overrides map[string]Quota) *Limiter {
	if !def.Enabled() && len(overrides) == 0 {
		return nil
	}
	return &Limiter{
		def:       def,
		overrides: overrides,
		now:       time.Now,
		buckets:   make(map[string]*bucket),
	}
}

// quotaFor resolves the quota applying to a tenant.
func (l *Limiter) quotaFor(id string) Quota {
	if q, ok := l.overrides[id]; ok {
		return q
	}
	return l.def
}

// Allow spends one token from tenant id's bucket. When the bucket is
// empty it reports false plus how long the tenant must wait for its
// next token — a per-tenant Retry-After derived from that tenant's own
// spending, not anyone else's.
func (l *Limiter) Allow(id string) (retryAfter time.Duration, ok bool) {
	if l == nil {
		return 0, true
	}
	q := l.quotaFor(id)
	if !q.Enabled() {
		return 0, true
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[id]
	if !exists {
		if len(l.buckets) >= maxIdleBuckets {
			l.pruneLocked(now)
		}
		b = &bucket{tokens: q.burst(), last: now}
		l.buckets[id] = b
	} else {
		dt := now.Sub(b.last).Seconds()
		if dt > 0 {
			b.tokens = math.Min(q.burst(), b.tokens+dt*q.Rate)
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / q.Rate
	return time.Duration(need * float64(time.Second)), false
}

// pruneLocked drops buckets that have refilled to their full burst —
// tenants idle long enough that forgetting them changes nothing.
func (l *Limiter) pruneLocked(now time.Time) {
	for id, b := range l.buckets {
		q := l.quotaFor(id)
		if !q.Enabled() {
			delete(l.buckets, id)
			continue
		}
		tokens := math.Min(q.burst(), b.tokens+now.Sub(b.last).Seconds()*q.Rate)
		if tokens >= q.burst() {
			delete(l.buckets, id)
		}
	}
}
