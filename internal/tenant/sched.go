package tenant

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// Errors surfaced by Scheduler.Enqueue. Both mean "back off and retry",
// but they name different bounds: ErrQueueFull is the global backlog
// limit shared by everyone, ErrTenantQueueFull is one tenant's own
// queue bound — other tenants can still submit.
var (
	ErrQueueFull       = errors.New("tenant: global job queue is full")
	ErrTenantQueueFull = errors.New("tenant: per-tenant job queue is full")
	ErrClosed          = errors.New("tenant: scheduler closed")
)

// Options sizes a Scheduler. The zero value gives every tenant weight
// 1, a 256-entry per-tenant queue, no global bound and no concurrency
// caps.
type Options struct {
	// DefaultWeight is the weight of tenants absent from Weights;
	// 0 means 1. A weight-2 tenant receives twice the service of a
	// weight-1 tenant while both have queued work.
	DefaultWeight int
	// Weights overrides per-tenant weights.
	Weights map[string]int
	// QueueDepth bounds each tenant's own backlog; 0 means 256.
	QueueDepth int
	// TotalDepth bounds the backlog summed over all tenants;
	// 0 means unbounded.
	TotalDepth int
	// Workers, when positive, enables soft concurrency shares: while
	// several tenants have queued work, a tenant already running at
	// least ceil(Workers·weight/activeWeight) jobs is passed over in
	// favor of tenants under their share. The cap is work-conserving —
	// it lifts when no under-share tenant has work.
	Workers int
}

// maxIdleTenants bounds the tenant table: once it grows beyond this,
// enqueues prune tenants with no queued or running work. A pruned
// tenant that returns is indistinguishable from a new one (its pass
// restarts at the current virtual time), so pruning never changes
// scheduling order among active tenants.
const maxIdleTenants = 4096

// entry wraps a queued item with its enqueue time, so dispatch can
// report how long the item sat in the fair queue (the scheduling
// component of queue wait, as opposed to waiting for a worker).
type entry[T any] struct {
	v  T
	at time.Time
}

// tq is one tenant's FIFO plus its stride-scheduling state.
type tq[T any] struct {
	weight  int
	pass    float64 // virtual time already consumed
	items   []entry[T]
	running int
}

// Scheduler is a weighted-fair multi-queue: Enqueue appends to the
// submitting tenant's FIFO, Dequeue serves tenants in stride order.
// All methods are safe for concurrent use.
type Scheduler[T any] struct {
	opts Options

	mu      sync.Mutex
	tenants map[string]*tq[T]
	queued  int     // total items across tenants
	vtime   float64 // pass of the most recently dispatched tenant
	wake    chan struct{}
	closed  bool
}

// NewScheduler builds a Scheduler from opts.
func NewScheduler[T any](opts Options) *Scheduler[T] {
	if opts.DefaultWeight <= 0 {
		opts.DefaultWeight = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	return &Scheduler[T]{
		opts:    opts,
		tenants: make(map[string]*tq[T]),
		wake:    make(chan struct{}),
	}
}

// Weight reports the configured weight for a tenant id.
func (s *Scheduler[T]) Weight(id string) int {
	if w, ok := s.opts.Weights[id]; ok && w > 0 {
		return w
	}
	return s.opts.DefaultWeight
}

func (s *Scheduler[T]) tenantLocked(id string) *tq[T] {
	q, ok := s.tenants[id]
	if !ok {
		if len(s.tenants) >= maxIdleTenants {
			s.pruneLocked()
		}
		q = &tq[T]{weight: s.Weight(id)}
		s.tenants[id] = q
	}
	return q
}

func (s *Scheduler[T]) pruneLocked() {
	for id, q := range s.tenants {
		if len(q.items) == 0 && q.running == 0 {
			delete(s.tenants, id)
		}
	}
}

// wakeAllLocked releases every blocked Dequeue so it re-examines the
// queues (close-and-replace broadcast).
func (s *Scheduler[T]) wakeAllLocked() {
	close(s.wake)
	s.wake = make(chan struct{})
}

// Enqueue appends v to tenant id's queue. A tenant returning from idle
// starts at the current virtual time, so it cannot bank credit while
// away and then monopolize the workers.
func (s *Scheduler[T]) Enqueue(id string, v T) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.opts.TotalDepth > 0 && s.queued >= s.opts.TotalDepth {
		return ErrQueueFull
	}
	q := s.tenantLocked(id)
	if len(q.items) >= s.opts.QueueDepth {
		return ErrTenantQueueFull
	}
	if len(q.items) == 0 && q.pass < s.vtime {
		q.pass = s.vtime
	}
	q.items = append(q.items, entry[T]{v: v, at: time.Now()})
	s.queued++
	s.wakeAllLocked()
	return nil
}

// pickLocked dispatches the next item in stride order, or reports
// false when nothing is eligible. Pass 0 honors concurrency shares;
// pass 1 ignores them so capacity is never left idle while work waits.
func (s *Scheduler[T]) pickLocked() (v T, id string, wait time.Duration, ok bool) {
	activeWeight, activeTenants := 0, 0
	for _, q := range s.tenants {
		if len(q.items) > 0 {
			activeWeight += q.weight
			activeTenants++
		}
	}
	if activeTenants == 0 {
		return v, "", 0, false
	}
	overShare := func(q *tq[T]) bool {
		if s.opts.Workers <= 0 || activeTenants <= 1 {
			return false
		}
		share := (s.opts.Workers*q.weight + activeWeight - 1) / activeWeight
		if share < 1 {
			share = 1
		}
		return q.running >= share
	}
	for phase := 0; phase < 2; phase++ {
		var best *tq[T]
		bestID := ""
		for tid, q := range s.tenants {
			if len(q.items) == 0 || (phase == 0 && overShare(q)) {
				continue
			}
			if best == nil || q.pass < best.pass || (q.pass == best.pass && tid < bestID) {
				best, bestID = q, tid
			}
		}
		if best == nil {
			continue
		}
		var e entry[T]
		e, best.items = best.items[0], best.items[1:]
		s.queued--
		s.vtime = best.pass
		best.pass += 1 / float64(best.weight)
		best.running++
		return e.v, bestID, time.Since(e.at), true
	}
	return v, "", 0, false
}

// Dequeue blocks until an item is dispatchable, the scheduler closes,
// or ctx is done. The caller owns the returned item and must call
// Done(id) when finished with it so the tenant's concurrency share is
// released.
func (s *Scheduler[T]) Dequeue(ctx context.Context) (v T, id string, ok bool) {
	v, id, _, ok = s.DequeueTimed(ctx)
	return v, id, ok
}

// DequeueTimed is Dequeue plus the item's scheduling wait: how long it
// sat in the fair queue between Enqueue and this dispatch. The wait
// isolates the scheduler's contribution to end-to-end queue latency —
// a heavy tenant over its share accrues scheduling wait even while
// workers sit idle for others.
func (s *Scheduler[T]) DequeueTimed(ctx context.Context) (v T, id string, wait time.Duration, ok bool) {
	for {
		s.mu.Lock()
		if v, id, wait, ok = s.pickLocked(); ok {
			s.mu.Unlock()
			return v, id, wait, true
		}
		if s.closed {
			s.mu.Unlock()
			return v, "", 0, false
		}
		wake := s.wake
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return v, "", 0, false
		case <-wake:
		}
	}
}

// Done releases one unit of tenant id's concurrency share.
func (s *Scheduler[T]) Done(id string) {
	s.mu.Lock()
	if q, ok := s.tenants[id]; ok && q.running > 0 {
		q.running--
	}
	s.wakeAllLocked()
	s.mu.Unlock()
}

// Close stops the scheduler: blocked Dequeues return false and further
// Enqueues fail with ErrClosed. Queued items remain for Drain.
func (s *Scheduler[T]) Close() {
	s.mu.Lock()
	s.closed = true
	s.wakeAllLocked()
	s.mu.Unlock()
}

// Drain removes and returns every queued item in fair dispatch order,
// ignoring concurrency shares. Used at shutdown to fail queued work
// deterministically.
func (s *Scheduler[T]) Drain() []T {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []T
	for {
		var best *tq[T]
		bestID := ""
		for tid, q := range s.tenants {
			if len(q.items) == 0 {
				continue
			}
			if best == nil || q.pass < best.pass || (q.pass == best.pass && tid < bestID) {
				best, bestID = q, tid
			}
		}
		if best == nil {
			return out
		}
		var e entry[T]
		e, best.items = best.items[0], best.items[1:]
		s.queued--
		best.pass += 1 / float64(best.weight)
		out = append(out, e.v)
	}
}

// Len reports the total queued items across all tenants.
func (s *Scheduler[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Active reports how many tenants currently have queued or running
// work.
func (s *Scheduler[T]) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, q := range s.tenants {
		if len(q.items) > 0 || q.running > 0 {
			n++
		}
	}
	return n
}

// Snapshot is a point-in-time view of one tenant's standing in the
// scheduler, plus the share context needed to price its backlog.
type Snapshot struct {
	ID      string `json:"tenant"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Weight  int    `json:"weight"`
	// ActiveWeight sums the weights of tenants with queued work (this
	// tenant included when it has any); the tenant's fair share of the
	// pool is Weight/ActiveWeight.
	ActiveWeight int `json:"active_weight"`
}

// Tenant snapshots one tenant. Unknown ids report zero backlog and the
// weight they would be assigned.
func (s *Scheduler[T]) Tenant(id string) Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{ID: id, Weight: s.Weight(id)}
	for tid, q := range s.tenants {
		if len(q.items) > 0 {
			snap.ActiveWeight += q.weight
		}
		if tid == id {
			snap.Queued = len(q.items)
			snap.Running = q.running
			snap.Weight = q.weight
		}
	}
	return snap
}

// Depths reports the per-tenant queued backlog for tenants with any
// queued or running work, sorted by id for stable output.
func (s *Scheduler[T]) Depths() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Snapshot, 0, len(s.tenants))
	activeWeight := 0
	for _, q := range s.tenants {
		if len(q.items) > 0 {
			activeWeight += q.weight
		}
	}
	for tid, q := range s.tenants {
		if len(q.items) == 0 && q.running == 0 {
			continue
		}
		out = append(out, Snapshot{
			ID: tid, Queued: len(q.items), Running: q.running,
			Weight: q.weight, ActiveWeight: activeWeight,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
