package tenant

import (
	"testing"
	"time"
)

// fakeClock drives a Limiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestLimiter(def Quota, per map[string]Quota) (*Limiter, *fakeClock) {
	l := NewLimiter(def, per)
	c := &fakeClock{t: time.Unix(1000, 0)}
	if l != nil {
		l.now = c.now
	}
	return l, c
}

func TestLimiterBurstThenRefill(t *testing.T) {
	l, clock := newTestLimiter(Quota{Rate: 2, Burst: 3}, nil)
	// The full burst budget is available immediately.
	for i := 0; i < 3; i++ {
		if retry, ok := l.Allow("a"); !ok {
			t.Fatalf("burst submission %d denied (retry %v)", i, retry)
		}
	}
	retry, ok := l.Allow("a")
	if ok {
		t.Fatal("4th back-to-back submission admitted past the burst budget")
	}
	// At 2 tokens/s the next token is 0.5s away.
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retry hint = %v, want (0, 500ms]", retry)
	}
	clock.advance(retry)
	if _, ok := l.Allow("a"); !ok {
		t.Fatal("submission denied after waiting the hinted retry")
	}
	// Refill caps at the burst budget, not beyond.
	clock.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if _, ok := l.Allow("a"); !ok {
			t.Fatalf("post-idle burst submission %d denied", i)
		}
	}
	if _, ok := l.Allow("a"); ok {
		t.Fatal("idle time banked more than the burst budget")
	}
}

func TestLimiterIsolatesTenants(t *testing.T) {
	l, _ := newTestLimiter(Quota{Rate: 1, Burst: 1}, nil)
	if _, ok := l.Allow("a"); !ok {
		t.Fatal("a's first submission denied")
	}
	if _, ok := l.Allow("a"); ok {
		t.Fatal("a's second immediate submission admitted")
	}
	// b's bucket is untouched by a's spending.
	if _, ok := l.Allow("b"); !ok {
		t.Fatal("b denied because a exhausted its own quota")
	}
}

func TestLimiterOverridesAndDisabled(t *testing.T) {
	l, _ := newTestLimiter(Quota{Rate: 1, Burst: 1}, map[string]Quota{
		"vip":  {Rate: 100, Burst: 10},
		"free": {Rate: 1, Burst: 1},
		"inf":  {}, // explicit zero quota = unlimited for this tenant
	})
	for i := 0; i < 10; i++ {
		if _, ok := l.Allow("vip"); !ok {
			t.Fatalf("vip burst submission %d denied", i)
		}
	}
	if _, ok := l.Allow("free"); !ok {
		t.Fatal("free first submission denied")
	}
	if _, ok := l.Allow("free"); ok {
		t.Fatal("free second submission admitted")
	}
	for i := 0; i < 50; i++ {
		if _, ok := l.Allow("inf"); !ok {
			t.Fatal("zero-quota override should disable limiting")
		}
	}
}

func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter
	if retry, ok := l.Allow("anyone"); !ok || retry != 0 {
		t.Fatalf("nil limiter = (%v, %t)", retry, ok)
	}
	if NewLimiter(Quota{}, nil) != nil {
		t.Fatal("NewLimiter with no quotas should return nil")
	}
}

func TestLimiterDefaultBurst(t *testing.T) {
	l, _ := newTestLimiter(Quota{Rate: 2.5}, nil) // Burst 0 -> ceil(2.5) = 3
	admitted := 0
	for i := 0; i < 5; i++ {
		if _, ok := l.Allow("a"); ok {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("default burst admitted %d, want 3", admitted)
	}
}

func TestCanonicalizeIDs(t *testing.T) {
	for raw, want := range map[string]string{
		"":            DefaultID,
		"alice":       "alice",
		"team-7.prod": "team-7.prod",
		"A_B":         "A_B",
	} {
		got, err := Canonicalize(raw)
		if err != nil || got != want {
			t.Errorf("Canonicalize(%q) = (%q, %v), want %q", raw, got, err, want)
		}
	}
	for _, bad := range []string{"a b", "x/y", "héllo", "a\n", string(make([]byte, 65))} {
		if _, err := Canonicalize(bad); err == nil {
			t.Errorf("Canonicalize(%q) accepted an invalid id", bad)
		}
	}
}
