// Package tenant turns the simulation service into a multi-tenant
// system: many callers share one worker fleet under explicit fairness
// and admission guarantees, the serving-tier analogue of the paper's
// secondary users sharing spectrum with primaries under coexistence
// constraints.
//
// Three pieces compose, each usable on its own:
//
//   - Identity: Canonicalize maps the X-Tenant-Id header (or an empty
//     string, for anonymous callers) onto a validated tenant id that is
//     carried through job metadata, logs and metrics.
//
//   - Scheduler: a weighted-fair queue of per-tenant FIFOs using stride
//     scheduling. Each tenant advances a virtual "pass" by 1/weight per
//     dispatched job, and the scheduler always serves the eligible
//     tenant with the smallest pass — so over any window tenants
//     receive service proportional to their weights, and a tenant with
//     a huge backlog cannot starve one with a small backlog. Soft
//     concurrency shares additionally cap how many of the pool's
//     workers one tenant occupies while others are waiting; the cap is
//     work-conserving and lifts when no other tenant has work.
//
//   - Limiter: per-tenant token-bucket admission control. Each tenant
//     refills at Rate jobs/second up to a Burst budget; a rejected
//     submission carries how long that tenant must wait for its next
//     token, which the HTTP layer turns into a per-tenant Retry-After.
//
// Scheduling only reorders jobs across tenants — it never changes what
// a job computes — so results stay bit-identical to the single-tenant
// service for every interleaving.
package tenant
