// Package geom supplies the 2-D geometry used to lay out cognitive radio
// deployments: node positions, distances, angles between line segments
// (the interweave beamformer is driven entirely by angles), and random
// placement primitives for Monte-Carlo scenario generation.
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a position in the 2-D deployment plane, in metres.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product p . q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the scalar cross product p x q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns |p|.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Unit returns p normalised to length one; the zero vector maps to itself.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return p.Scale(1 / n)
}

// Midpoint returns the midpoint of segment pq.
func Midpoint(p, q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// String renders the point for reports.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// AngleAt returns the angle at vertex v between rays v->a and v->b,
// in radians within [0, pi]. Algorithm 3 computes alpha = angle
// Pr-St1-St2 exactly this way.
func AngleAt(v, a, b Point) float64 {
	u, w := a.Sub(v), b.Sub(v)
	nu, nw := u.Norm(), w.Norm()
	if nu == 0 || nw == 0 {
		return 0
	}
	c := u.Dot(w) / (nu * nw)
	c = math.Max(-1, math.Min(1, c))
	return math.Acos(c)
}

// Bearing returns the angle of the vector p->q measured from the +X axis,
// in radians within (-pi, pi].
func Bearing(p, q Point) float64 {
	d := q.Sub(p)
	return math.Atan2(d.Y, d.X)
}

// Collinearity measures how close points a, b, c are to lying on one
// line: 0 means perfectly collinear, 1 means maximally spread
// (it is |sin| of the angle at b). Algorithm 3's PU-selection heuristic
// prefers primary receivers that maximise this for (St1, St2, Pr).
func Collinearity(a, b, c Point) float64 {
	u, w := a.Sub(b), c.Sub(b)
	nu, nw := u.Norm(), w.Norm()
	if nu == 0 || nw == 0 {
		return 0
	}
	return math.Abs(u.Cross(w)) / (nu * nw)
}

// Segment is a line segment between two points.
type Segment struct {
	A, B Point
}

// Length returns the segment's length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Intersects reports whether segments s and t share a point. The testbed
// uses this to decide whether a radio link crosses an obstacle wall.
func (s Segment) Intersects(t Segment) bool {
	d1 := t.B.Sub(t.A).Cross(s.A.Sub(t.A))
	d2 := t.B.Sub(t.A).Cross(s.B.Sub(t.A))
	d3 := s.B.Sub(s.A).Cross(t.A.Sub(s.A))
	d4 := s.B.Sub(s.A).Cross(t.B.Sub(s.A))
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	on := func(p, a, b Point) bool {
		return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
			math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
	}
	switch {
	case d1 == 0 && on(s.A, t.A, t.B):
		return true
	case d2 == 0 && on(s.B, t.A, t.B):
		return true
	case d3 == 0 && on(t.A, s.A, s.B):
		return true
	case d4 == 0 && on(t.B, s.A, s.B):
		return true
	}
	return false
}

// DistToSegment returns the distance from point p to segment s.
func (s Segment) DistToPoint(p Point) float64 {
	ab := s.B.Sub(s.A)
	l2 := ab.Dot(ab)
	if l2 == 0 {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(ab) / l2
	t = math.Max(0, math.Min(1, t))
	proj := s.A.Add(ab.Scale(t))
	return p.Dist(proj)
}

// RandomInDisc draws a point uniformly from the disc of the given radius
// centred at c. Table 1's scenario scatters primary receivers uniformly in
// a 300 m-diameter disc this way.
func RandomInDisc(rng *rand.Rand, c Point, radius float64) Point {
	r := radius * math.Sqrt(rng.Float64())
	th := 2 * math.Pi * rng.Float64()
	return Point{c.X + r*math.Cos(th), c.Y + r*math.Sin(th)}
}

// RandomInRect draws a point uniformly from the axis-aligned rectangle
// [x0,x1] x [y0,y1].
func RandomInRect(rng *rand.Rand, x0, y0, x1, y1 float64) Point {
	return Point{x0 + (x1-x0)*rng.Float64(), y0 + (y1-y0)*rng.Float64()}
}

// RandomOnCircle draws a point uniformly from the circle of the given
// radius centred at c.
func RandomOnCircle(rng *rand.Rand, c Point, radius float64) Point {
	th := 2 * math.Pi * rng.Float64()
	return Point{c.X + radius*math.Cos(th), c.Y + radius*math.Sin(th)}
}

// PolarPoint returns the point at the given radius and angle (radians,
// from +X axis) around centre c. Figure 8's receiver walks a semicircle
// in 20-degree steps using this.
func PolarPoint(c Point, radius, angle float64) Point {
	return Point{c.X + radius*math.Cos(angle), c.Y + radius*math.Sin(angle)}
}

// Centroid returns the mean position of pts; the zero Point for none.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var s Point
	for _, p := range pts {
		s = s.Add(p)
	}
	return s.Scale(1 / float64(len(pts)))
}

// Diameter returns the largest pairwise distance among pts. Cluster
// validity (all members within d of each other) checks this.
func Diameter(pts []Point) float64 {
	max := 0.0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d > max {
				max = d
			}
		}
	}
	return max
}
