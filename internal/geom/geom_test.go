package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestVectorOps(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -1)
	if p.Add(q) != Pt(4, 1) {
		t.Error("Add")
	}
	if p.Sub(q) != Pt(-2, 3) {
		t.Error("Sub")
	}
	if p.Scale(2) != Pt(2, 4) {
		t.Error("Scale")
	}
	if p.Dot(q) != 1 {
		t.Error("Dot")
	}
	if p.Cross(q) != -7 {
		t.Error("Cross")
	}
	if Pt(3, 4).Norm() != 5 {
		t.Error("Norm")
	}
	if Pt(0, 3).Dist(Pt(4, 0)) != 5 {
		t.Error("Dist")
	}
	if Pt(0, 0).Unit() != Pt(0, 0) {
		t.Error("Unit of zero")
	}
	if u := Pt(0, -2).Unit(); u != Pt(0, -1) {
		t.Errorf("Unit = %v", u)
	}
	if Midpoint(Pt(0, 0), Pt(2, 4)) != Pt(1, 2) {
		t.Error("Midpoint")
	}
	if Pt(1, 2).String() != "(1.0, 2.0)" {
		t.Errorf("String = %q", Pt(1, 2).String())
	}
}

func TestAngleAt(t *testing.T) {
	// Right angle at origin.
	if a := AngleAt(Pt(0, 0), Pt(1, 0), Pt(0, 1)); math.Abs(a-math.Pi/2) > 1e-12 {
		t.Errorf("right angle = %v", a)
	}
	// Straight line -> pi.
	if a := AngleAt(Pt(0, 0), Pt(1, 0), Pt(-1, 0)); math.Abs(a-math.Pi) > 1e-12 {
		t.Errorf("straight = %v", a)
	}
	// Same ray -> 0.
	if a := AngleAt(Pt(0, 0), Pt(1, 0), Pt(2, 0)); a > 1e-12 {
		t.Errorf("same ray = %v", a)
	}
	// Degenerate vertex coincident with an endpoint.
	if a := AngleAt(Pt(0, 0), Pt(0, 0), Pt(1, 1)); a != 0 {
		t.Errorf("degenerate = %v", a)
	}
}

func TestBearing(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(1, 0), 0},
		{Pt(0, 0), Pt(0, 1), math.Pi / 2},
		{Pt(0, 0), Pt(-1, 0), math.Pi},
		{Pt(1, 1), Pt(0, 0), -3 * math.Pi / 4},
	}
	for _, c := range cases {
		if got := Bearing(c.p, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Bearing(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestCollinearity(t *testing.T) {
	if c := Collinearity(Pt(0, 0), Pt(1, 0), Pt(2, 0)); c > 1e-12 {
		t.Errorf("collinear = %v", c)
	}
	if c := Collinearity(Pt(0, 0), Pt(1, 0), Pt(1, 5)); math.Abs(c-1) > 1e-12 {
		t.Errorf("perpendicular = %v", c)
	}
	if c := Collinearity(Pt(0, 0), Pt(0, 0), Pt(1, 1)); c != 0 {
		t.Errorf("degenerate = %v", c)
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		s, u Segment
		want bool
	}{
		{Segment{Pt(0, 0), Pt(2, 2)}, Segment{Pt(0, 2), Pt(2, 0)}, true},
		{Segment{Pt(0, 0), Pt(1, 1)}, Segment{Pt(2, 2), Pt(3, 3)}, false},
		{Segment{Pt(0, 0), Pt(2, 0)}, Segment{Pt(1, 0), Pt(3, 0)}, true},      // collinear overlap
		{Segment{Pt(0, 0), Pt(1, 0)}, Segment{Pt(1, 0), Pt(2, 5)}, true},      // shared endpoint
		{Segment{Pt(0, 0), Pt(1, 0)}, Segment{Pt(0.5, 1), Pt(0.5, 2)}, false}, // above, no touch
		{Segment{Pt(0, 0), Pt(1, 0)}, Segment{Pt(0.5, -1), Pt(0.5, 1)}, true}, // crossing through interior
	}
	for i, c := range cases {
		if got := c.s.Intersects(c.u); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.u.Intersects(c.s); got != c.want {
			t.Errorf("case %d (swapped): Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestDistToPoint(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(10, 0)}
	if d := s.DistToPoint(Pt(5, 3)); d != 3 {
		t.Errorf("interior projection = %v", d)
	}
	if d := s.DistToPoint(Pt(-3, 4)); d != 5 {
		t.Errorf("before A = %v", d)
	}
	if d := s.DistToPoint(Pt(13, 4)); d != 5 {
		t.Errorf("after B = %v", d)
	}
	pt := Segment{Pt(1, 1), Pt(1, 1)}
	if d := pt.DistToPoint(Pt(4, 5)); d != 5 {
		t.Errorf("degenerate segment = %v", d)
	}
	if s.Length() != 10 || pt.Length() != 0 {
		t.Error("Length")
	}
}

func TestRandomInDisc(t *testing.T) {
	rng := mathx.NewRand(11)
	c := Pt(100, -50)
	const R = 150.0
	var inHalf int
	const n = 100000
	for i := 0; i < n; i++ {
		p := RandomInDisc(rng, c, R)
		if d := p.Dist(c); d > R {
			t.Fatalf("point outside disc: %v (d=%v)", p, d)
		}
		if p.Dist(c) < R/math.Sqrt2 {
			inHalf++
		}
	}
	// Uniform area => fraction within r = R/sqrt(2) is 1/2.
	if f := float64(inHalf) / n; math.Abs(f-0.5) > 0.01 {
		t.Errorf("inner-half fraction = %v, want ~0.5", f)
	}
}

func TestRandomOnCircleAndPolar(t *testing.T) {
	rng := mathx.NewRand(12)
	c := Pt(1, 2)
	for i := 0; i < 1000; i++ {
		p := RandomOnCircle(rng, c, 7)
		if math.Abs(p.Dist(c)-7) > 1e-9 {
			t.Fatalf("not on circle: %v", p)
		}
	}
	p := PolarPoint(c, 2, math.Pi/2)
	if p.Dist(Pt(1, 4)) > 1e-12 {
		t.Errorf("PolarPoint = %v", p)
	}
}

func TestRandomInRect(t *testing.T) {
	rng := mathx.NewRand(13)
	for i := 0; i < 1000; i++ {
		p := RandomInRect(rng, -1, -2, 3, 4)
		if p.X < -1 || p.X > 3 || p.Y < -2 || p.Y > 4 {
			t.Fatalf("outside rect: %v", p)
		}
	}
}

func TestCentroidDiameter(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(0, 2), Pt(2, 2)}
	if Centroid(pts) != Pt(1, 1) {
		t.Error("Centroid")
	}
	if d := Diameter(pts); math.Abs(d-2*math.Sqrt2) > 1e-12 {
		t.Errorf("Diameter = %v", d)
	}
	if Centroid(nil) != Pt(0, 0) || Diameter(nil) != 0 {
		t.Error("empty slices")
	}
	if Diameter([]Point{Pt(5, 5)}) != 0 {
		t.Error("single-point diameter")
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		bound := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Pt(bound(ax), bound(ay))
		b := Pt(bound(bx), bound(by))
		c := Pt(bound(cx), bound(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
