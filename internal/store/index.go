package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Index operations. The log is append-only: a put supersedes any
// earlier line for the same key, a del tombstones it. Compaction
// rewrites the log as one put per live entry.
const (
	opPut = "put"
	opDel = "del"
)

// indexLine is one record of index.log.
type indexLine struct {
	Op         string `json:"op"`
	Key        string `json:"key"`
	Kind       string `json:"kind,omitempty"`
	Experiment string `json:"experiment,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	Size       int64  `json:"size,omitempty"`
	Created    int64  `json:"t,omitempty"`
}

// object is the self-describing on-disk entry format. Payload rides as
// base64 through encoding/json's []byte handling, so arbitrary bytes
// round-trip exactly; Sum is the hex SHA-256 of the raw payload and is
// verified on every read.
type object struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	Meta    Meta   `json:"meta"`
	Created int64  `json:"created_unix"`
	Sum     string `json:"sum"`
	Payload []byte `json:"payload"`
}

func payloadSum(payload []byte) string {
	h := sha256.Sum256(payload)
	return hex.EncodeToString(h[:])
}

// decodeObject parses and verifies one object file's bytes. Every
// failure mode — truncation, bit flips, version drift, checksum
// mismatch — comes back as an error, never a panic or a silently
// wrong payload.
func decodeObject(data []byte) (object, error) {
	var o object
	if err := json.Unmarshal(data, &o); err != nil {
		return object{}, fmt.Errorf("store: undecodable object: %w", err)
	}
	if o.Version <= 0 || o.Version > FormatVersion {
		return object{}, fmt.Errorf("store: object version %d unsupported", o.Version)
	}
	if o.Key == "" {
		return object{}, errors.New("store: object has no key")
	}
	if o.Sum != payloadSum(o.Payload) {
		return object{}, errors.New("store: payload checksum mismatch")
	}
	return o, nil
}

func readObject(path string) (object, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return object{}, err
	}
	return decodeObject(data)
}

// decodeIndexLine parses one index.log line. The same tolerance rules
// as decodeObject apply: any malformation is an error for the caller
// to count, never a panic.
func decodeIndexLine(line []byte) (indexLine, error) {
	var l indexLine
	if err := json.Unmarshal(line, &l); err != nil {
		return indexLine{}, fmt.Errorf("store: undecodable index line: %w", err)
	}
	switch l.Op {
	case opPut:
		if l.Key == "" || l.Size < 0 {
			return indexLine{}, errors.New("store: malformed put line")
		}
	case opDel:
		if l.Key == "" {
			return indexLine{}, errors.New("store: malformed del line")
		}
	default:
		return indexLine{}, fmt.Errorf("store: unknown index op %q", l.Op)
	}
	return l, nil
}

// replayIndex folds an index log into its live entries. Returns the
// surviving records (last writer wins, tombstones erase) plus how many
// lines were skipped as corrupt. A missing trailing newline — the
// signature of a crash mid-append — is tolerated silently: the partial
// final line counts as corrupt only if it also fails to parse.
func replayIndex(r io.Reader) (map[string]indexLine, int, error) {
	live := make(map[string]indexLine)
	bad := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		l, err := decodeIndexLine(line)
		if err != nil {
			bad++
			continue
		}
		switch l.Op {
		case opPut:
			live[l.Key] = l
		case opDel:
			delete(live, l.Key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, bad, err
	}
	return live, bad, nil
}

// loadIndex replays index.log into the in-memory index. Corrupt lines
// are counted as quarantined; a wholly unreadable log is quarantined as
// a file and treated as empty (reconcileObjects rebuilds from the
// objects directory, which is the source of truth).
func (s *Store) loadIndex() error {
	f, err := os.Open(s.indexPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	live, bad, rerr := replayIndex(f)
	f.Close()
	if rerr != nil {
		s.quarantineFile(s.indexPath(), "index")
		s.logger.Warn("store: index unreadable, rebuilding from objects", "error", rerr)
		return nil
	}
	if bad > 0 {
		s.quarantined += int64(bad)
		metQuarantined.Add(int64(bad))
		s.deadLines += bad
		s.logger.Warn("store: skipped corrupt index lines", "lines", bad)
	}
	for key, l := range live {
		s.idx[key] = &rec{
			key:     key,
			meta:    Meta{Kind: l.Kind, Experiment: l.Experiment, Seed: l.Seed},
			size:    l.Size,
			created: l.Created,
		}
	}
	return nil
}

// reconcileObjects walks the objects directory and heals both
// directions of index/object drift: an indexed key whose object file is
// gone is dropped; an unindexed-but-valid object (crash between the
// object write and the index append) is adopted; an invalid object is
// quarantined. Leftover temp files from interrupted atomic writes are
// removed.
func (s *Store) reconcileObjects() {
	objDir := filepath.Join(s.dir, "objects")
	names, err := os.ReadDir(objDir)
	if err != nil {
		s.logger.Warn("store: reading objects dir", "error", err)
		return
	}
	present := make(map[string]bool, len(names))
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		path := filepath.Join(objDir, name)
		if strings.Contains(name, ".tmp") {
			os.Remove(path)
			continue
		}
		present[name] = true
	}

	// Index entries whose object vanished: quarantine the record.
	for key, r := range s.idx {
		if !present[hashKey(key)] {
			delete(s.idx, key)
			s.deadLines++
			s.quarantined++
			metQuarantined.Inc()
			s.logger.Warn("store: indexed object missing", "key", key, "cause", r.meta.Kind)
		}
	}

	// Objects the index does not know: adopt the valid, quarantine the
	// rest. Adoption re-reads the file, so sizes reflect disk truth.
	indexed := make(map[string]bool, len(s.idx))
	for key := range s.idx {
		indexed[hashKey(key)] = true
	}
	for name := range present {
		if indexed[name] {
			continue
		}
		path := filepath.Join(objDir, name)
		obj, err := readObject(path)
		if err != nil || hashKey(obj.Key) != name {
			s.quarantineFile(path, "object")
			s.logger.Warn("store: quarantined stray object", "file", name, "cause", err)
			continue
		}
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		s.idx[obj.Key] = &rec{key: obj.Key, meta: obj.Meta, size: fi.Size(), created: obj.Created}
		s.deadLines++ // the adopted entry is not in the log yet; compaction writes it
		s.logger.Info("store: adopted orphaned object", "key", obj.Key)
	}

	// Sizes recorded in the index can drift from disk (e.g. a put whose
	// index append was lost, then an older line replayed); trust stat.
	for key, r := range s.idx {
		if fi, err := os.Stat(filepath.Join(objDir, hashKey(key))); err == nil && fi.Size() != r.size {
			r.size = fi.Size()
			s.deadLines++
		}
	}
}

// appendIndexLocked durably appends one line to index.log.
func (s *Store) appendIndexLocked(l indexLine) error {
	data, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("store: encoding index line: %w", err)
	}
	data = append(data, '\n')
	if _, err := s.indexF.Write(data); err != nil {
		return fmt.Errorf("store: appending index: %w", err)
	}
	if err := s.indexF.Sync(); err != nil {
		return fmt.Errorf("store: syncing index: %w", err)
	}
	return nil
}

// maybeCompactLocked rewrites the log once superseded lines outnumber
// live entries, so the log stays proportional to the store.
func (s *Store) maybeCompactLocked() {
	if s.deadLines > 64 && s.deadLines > len(s.idx) {
		s.compactLocked()
	}
}

// compactLocked atomically replaces index.log with one put line per
// live entry.
func (s *Store) compactLocked() {
	var buf bytes.Buffer
	for _, e := range s.entriesLocked() {
		data, err := json.Marshal(indexLine{Op: opPut, Key: e.Key, Kind: e.Meta.Kind,
			Experiment: e.Meta.Experiment, Seed: e.Meta.Seed, Size: e.Size, Created: e.Created})
		if err != nil {
			s.logger.Warn("store: compaction encode", "key", e.Key, "error", err)
			return
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	if err := writeFileAtomic(s.indexPath(), buf.Bytes()); err != nil {
		s.logger.Warn("store: compaction write", "error", err)
		return
	}
	if s.indexF != nil {
		s.indexF.Close()
		f, err := os.OpenFile(s.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			s.logger.Error("store: reopening index after compaction", "error", err)
			s.closed = true
			return
		}
		s.indexF = f
	}
	s.deadLines = 0
}

// entriesLocked is Entries without locking, oldest-first for stable
// compaction output.
func (s *Store) entriesLocked() []Entry {
	out := make([]Entry, 0, len(s.idx))
	for _, r := range s.idx {
		out = append(out, Entry{Key: r.key, Meta: r.meta, Size: r.size, Created: r.created})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Created != out[j].Created {
			return out[i].Created < out[j].Created
		}
		return out[i].Key < out[j].Key
	})
	return out
}
