package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, MaxBytes: maxBytes})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	payload := []byte("== fig6a: a report ==\nwith\nlines\x00and a NUL byte")
	meta := Meta{Kind: "result", Experiment: "fig6a", Seed: 7}
	if err := s.Put("k1", payload, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, ok := s.Get("k1")
	if !ok {
		t.Fatal("Get miss after Put")
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload round-trip: got %q want %q", got, payload)
	}
	if gotMeta != meta {
		t.Errorf("meta round-trip: got %+v want %+v", gotMeta, meta)
	}
	if _, _, ok := s.Get("absent"); ok {
		t.Error("Get on absent key reported a hit")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := s.Put(key, []byte("payload "+key), Meta{Kind: "result", Experiment: "fig7"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("key-2", []byte("overwritten"), Meta{Kind: "result"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("key-4"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 0)
	if got := s2.Stats().Entries; got != 4 {
		t.Fatalf("entries after reopen: got %d want 4", got)
	}
	if p, _, ok := s2.Get("key-2"); !ok || string(p) != "overwritten" {
		t.Errorf("key-2 after reopen: ok=%v payload=%q", ok, p)
	}
	if _, _, ok := s2.Get("key-4"); ok {
		t.Error("deleted key-4 resurrected by reopen")
	}
	if p, _, ok := s2.Get("key-0"); !ok || string(p) != "payload key-0" {
		t.Errorf("key-0 after reopen: ok=%v payload=%q", ok, p)
	}
}

// TestCorruptObjectQuarantined flips one byte of an object file and
// checks the read path reports a miss, quarantines the file, and drops
// the entry — never an error or a wrong payload.
func TestCorruptObjectQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Put("victim", []byte(strings.Repeat("data", 64)), Meta{Kind: "result"}); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath("victim")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, ok := s.Get("victim"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if s.Has("victim") {
		t.Error("corrupt entry still indexed")
	}
	if got := s.Stats().Quarantined; got != 1 {
		t.Errorf("quarantined: got %d want 1", got)
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Errorf("quarantine dir: %v entries, err %v", len(q), err)
	}
	// The quarantine must be durable: a reopen stays corruption-free.
	s.Close()
	s2 := mustOpen(t, dir, 0)
	if _, _, ok := s2.Get("victim"); ok {
		t.Error("corrupt entry resurrected by reopen")
	}
}

// TestCorruptAtOpenQuarantined corrupts an object while the store is
// closed; the next open must quarantine on first read rather than fail.
func TestCorruptAtOpenQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Put("a", []byte("payload-a"), Meta{Kind: "result"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("payload-b"), Meta{Kind: "result"}); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath("a")
	s.Close()
	if err := os.WriteFile(path, []byte("garbage, not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 0)
	if _, _, ok := s2.Get("a"); ok {
		t.Error("corrupt object served after reopen")
	}
	if p, _, ok := s2.Get("b"); !ok || string(p) != "payload-b" {
		t.Errorf("healthy sibling lost: ok=%v payload=%q", ok, p)
	}
}

// TestTruncatedIndexTolerated simulates a crash mid-append: a partial
// final line must not break replay or lose earlier entries.
func TestTruncatedIndexTolerated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Put("kept", []byte("kept-payload"), Meta{Kind: "result"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	f, err := os.OpenFile(filepath.Join(dir, "index.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","key":"half`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, dir, 0)
	if p, _, ok := s2.Get("kept"); !ok || string(p) != "kept-payload" {
		t.Errorf("entry lost to truncated index: ok=%v payload=%q", ok, p)
	}
}

// TestOrphanObjectAdopted simulates a crash between the object write
// and the index append: the complete object must be adopted on reopen.
func TestOrphanObjectAdopted(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Put("orphan", []byte("orphan-payload"), Meta{Kind: "result", Experiment: "fig8"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Drop the index entirely; the object directory is the truth.
	if err := os.Remove(filepath.Join(dir, "index.log")); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 0)
	p, meta, ok := s2.Get("orphan")
	if !ok || string(p) != "orphan-payload" {
		t.Fatalf("orphan not adopted: ok=%v payload=%q", ok, p)
	}
	if meta.Experiment != "fig8" {
		t.Errorf("adopted meta: %+v", meta)
	}
}

// TestIndexedObjectMissingDropped covers the inverse drift: an index
// entry whose object file vanished is dropped at open, not served.
func TestIndexedObjectMissingDropped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Put("gone", []byte("x"), Meta{Kind: "result"}); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath("gone")
	s.Close()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, 0)
	if s2.Has("gone") {
		t.Error("entry with missing object still indexed")
	}
}

func TestCorruptManifestReinitialised(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir, 0).Close()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"), []byte("\x01\x02 not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, 0)
	if got := s.Stats().Quarantined; got != 1 {
		t.Errorf("quarantined: got %d want 1", got)
	}
}

func TestFutureManifestRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"),
		[]byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a future-version manifest")
	}
}

// TestGCBound checks the size bound evicts LRU result entries but
// never campaign control records.
func TestGCBound(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 2048)
	if err := s.Put("campaign/x/spec", bytes.Repeat([]byte("s"), 64), Meta{Kind: "campaign-spec"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("res-%02d", i)
		if err := s.Put(key, bytes.Repeat([]byte("r"), 256), Meta{Kind: "result"}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("size bound never evicted")
	}
	if st.Bytes > 2048 {
		t.Errorf("still over bound: %d bytes", st.Bytes)
	}
	if !s.Has("campaign/x/spec") {
		t.Error("protected campaign-spec entry was evicted")
	}
	if s.Has("res-00") {
		t.Error("oldest result entry survived eviction pressure")
	}
	if !s.Has("res-15") {
		t.Error("newest result entry was evicted")
	}
}

func TestDeletePrefix(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("campaign/c1/ckpt/%d", i), []byte("x"), Meta{Kind: "checkpoint"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("campaign/c1/spec", []byte("x"), Meta{Kind: "campaign-spec"}); err != nil {
		t.Fatal(err)
	}
	if n := s.DeletePrefix("campaign/c1/ckpt/"); n != 3 {
		t.Fatalf("DeletePrefix removed %d, want 3", n)
	}
	if !s.Has("campaign/c1/spec") {
		t.Error("prefix delete overreached")
	}
}

func TestEntriesNewestFirst(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	for _, key := range []string{"a", "b", "c"} {
		if err := s.Put(key, []byte(key), Meta{Kind: "result"}); err != nil {
			t.Fatal(err)
		}
	}
	es := s.Entries()
	if len(es) != 3 {
		t.Fatalf("entries: %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Created > es[i-1].Created {
			t.Errorf("entries not newest-first: %v", es)
		}
	}
	if got := s.EntriesByKind("nope"); len(got) != 0 {
		t.Errorf("EntriesByKind(nope): %v", got)
	}
}

// TestCompaction drives enough churn to trigger log compaction and
// verifies nothing is lost across it and a reopen.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for round := 0; round < 40; round++ {
		for i := 0; i < 4; i++ {
			key := fmt.Sprintf("k%d", i)
			if err := s.Put(key, []byte(fmt.Sprintf("round %d", round)), Meta{Kind: "result"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	fi, err := os.Stat(filepath.Join(dir, "index.log"))
	if err != nil {
		t.Fatal(err)
	}
	// 160 puts at ~100 bytes/line would be ~16k without compaction.
	if fi.Size() > 8<<10 {
		t.Errorf("index.log never compacted: %d bytes", fi.Size())
	}
	s.Close()
	s2 := mustOpen(t, dir, 0)
	for i := 0; i < 4; i++ {
		if p, _, ok := s2.Get(fmt.Sprintf("k%d", i)); !ok || string(p) != "round 39" {
			t.Errorf("k%d after compaction+reopen: ok=%v payload=%q", i, ok, p)
		}
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	s.Close()
	if err := s.Put("k", []byte("v"), Meta{}); err != ErrClosed {
		t.Errorf("Put after Close: %v", err)
	}
	if _, _, ok := s.Get("k"); ok {
		t.Error("Get after Close hit")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	if err := s.Put("", []byte("v"), Meta{}); err == nil {
		t.Error("empty key accepted")
	}
}
