package store

import "repro/internal/obs"

// Process-wide store metrics in the stack's Default registry, exposed
// by cogmimod at /metrics/prom. Counters aggregate across store
// instances (tests open many); the gauges rebind to the newest opened
// store, exactly like cmd/cogmimod's service gauges.
var (
	metOpens = obs.Default.Counter("cogmimod_store_opens_total",
		"Durable stores opened (or reopened after restart).")
	metPuts = obs.Default.Counter("cogmimod_store_puts_total",
		"Entries durably written (atomic temp+rename+fsync).")
	metGets = obs.Default.CounterVec("cogmimod_store_gets_total",
		"Store reads by outcome: hit or miss (corrupt entries count as misses).",
		"result")
	metQuarantined = obs.Default.Counter("cogmimod_store_quarantined_total",
		"Corrupt manifests, index lines and objects moved to quarantine instead of panicking.")
	metEvictions = obs.Default.Counter("cogmimod_store_gc_evictions_total",
		"Entries evicted by the size-bounded GC.")
)

// init pre-seeds the labeled series so both outcomes scrape as 0
// before any traffic.
func init() {
	metGets.With("hit").Add(0)
	metGets.With("miss").Add(0)
}

// bindGauges points the live-state gauges at s; the most recently
// opened store wins, matching GaugeFunc's rebind semantics.
func bindGauges(s *Store) {
	obs.Default.GaugeFunc("cogmimod_store_bytes",
		"Total object bytes in the durable store.",
		func() float64 { return float64(s.Stats().Bytes) })
	obs.Default.GaugeFunc("cogmimod_store_entries",
		"Entries indexed by the durable store.",
		func() float64 { return float64(s.Stats().Entries) })
}
