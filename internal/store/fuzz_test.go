package store

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzIndexReplay feeds arbitrary bytes — truncated, duplicated and
// bit-flipped index logs among them — through replayIndex. The
// contract under fuzzing: never panic, never error on mere corruption
// (only on reader failure, which bytes.Reader cannot produce), and
// every surviving entry must be a well-formed put.
func FuzzIndexReplay(f *testing.F) {
	valid := `{"op":"put","key":"abc","kind":"result","size":42,"t":123}` + "\n" +
		`{"op":"put","key":"abc","kind":"result","size":43,"t":124}` + "\n" +
		`{"op":"del","key":"abc"}` + "\n"
	f.Add([]byte(valid))
	f.Add([]byte(valid[:len(valid)/2])) // truncated mid-line
	flipped := []byte(valid)
	flipped[10] ^= 0x80
	f.Add(flipped)
	f.Add([]byte(`{"op":"put","key":"a","size":-1}` + "\n"))
	f.Add([]byte(`{"op":"nope","key":"a"}` + "\n"))
	f.Add([]byte("\x00\x01\x02 not json at all"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		live, bad, err := replayIndex(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("replayIndex errored on in-memory input: %v", err)
		}
		if bad < 0 {
			t.Fatalf("negative corrupt-line count %d", bad)
		}
		for key, l := range live {
			if l.Op != opPut || l.Key != key || l.Key == "" || l.Size < 0 {
				t.Fatalf("replay kept a malformed entry: %+v under %q", l, key)
			}
		}
	})
}

// FuzzObjectDecode pushes arbitrary bytes through the object decoder.
// Corruption of any shape must come back as an error — quarantine
// material — never a panic and never an object whose checksum does not
// match its payload.
func FuzzObjectDecode(f *testing.F) {
	good, _ := json.Marshal(object{
		Version: FormatVersion,
		Key:     "some/key",
		Meta:    Meta{Kind: "result", Experiment: "fig7", Seed: 3},
		Created: 456,
		Sum:     payloadSum([]byte("payload bytes")),
		Payload: []byte("payload bytes"),
	})
	f.Add(good)
	f.Add(good[:len(good)-7]) // truncated
	flipped := bytes.Clone(good)
	flipped[len(flipped)/3] ^= 0x01
	f.Add(flipped)
	f.Add(bytes.Repeat(good, 2)) // duplicated/concatenated
	f.Add([]byte(`{"version":1,"key":"k","sum":"00","payload":"QQ=="}`))
	f.Add([]byte(`{"version":99,"key":"k"}`))
	f.Add([]byte("{}"))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		obj, err := decodeObject(data)
		if err != nil {
			return // quarantined; the only acceptable failure mode
		}
		if obj.Key == "" {
			t.Fatal("decoder accepted an object with no key")
		}
		if obj.Sum != payloadSum(obj.Payload) {
			t.Fatal("decoder accepted a payload that fails its checksum")
		}
		if obj.Version <= 0 || obj.Version > FormatVersion {
			t.Fatalf("decoder accepted unsupported version %d", obj.Version)
		}
	})
}
