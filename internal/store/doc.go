// Package store is the repository's durable, content-addressed result
// store: the disk layer under the service's in-memory LRU cache and
// under campaign checkpoints (internal/campaign). A cogmimod restart
// loses nothing that reached the store — cache hits survive process
// death, and interrupted campaigns resume from their last checkpoint.
//
// # Layout
//
// A store owns one directory:
//
//	<dir>/
//	  MANIFEST.json     versioned marker identifying the on-disk format
//	  index.log         append-only JSON-lines index (a rebuildable cache)
//	  objects/<hash>    one self-describing JSON entry per key
//	  quarantine/       corrupted files moved aside, never deleted
//
// Every entry is keyed by an arbitrary string — the service uses its
// canonical request key (hex SHA-256 of the request), campaigns use
// structured names like "campaign/<id>/spec" — and stored under the
// hex SHA-256 of that key so keys never constrain file naming. The
// object file embeds the key, metadata, and a SHA-256 checksum of the
// payload, so the objects directory alone can rebuild the index.
//
// # Durability
//
// All writes are atomic: payloads are written to a temp file in the
// same directory, fsynced, renamed over the target, and the directory
// is fsynced. The index is append-only with one fsync per record; a
// crash can at worst truncate the final line, which replay tolerates.
// A put is ordered object-first, index-second, so every index entry
// references a complete object; an orphaned object (crash between the
// two writes) is adopted back into the index on the next open.
//
// # Corruption tolerance
//
// Open never fails on bad data: an unreadable manifest is quarantined
// and reinitialised, unparseable index lines are skipped and counted,
// and an object that fails decoding or checksum verification — at open
// or at read time — is moved to quarantine/ and surfaced through the
// cogmimod_store_quarantined_total metric instead of a panic or a
// silently wrong result.
//
// # GC
//
// The store is size-bounded (Options.MaxBytes): when object bytes
// exceed the bound, the least-recently-used evictable entries are
// deleted. Campaign control records (kinds "campaign-spec",
// "campaign-state" and "checkpoint") are never evicted — interrupting
// a resumable campaign to free cache space would trade durability for
// capacity — so the bound effectively applies to result payloads.
package store
