package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// FormatVersion is the on-disk format this package reads and writes.
// Open refuses a directory whose manifest declares a newer version —
// writing into it could corrupt data a newer binary still needs.
const FormatVersion = 1

// Meta describes an entry beyond its payload. Kind partitions the key
// space ("result", "kernel-result", "campaign-spec", "campaign-state",
// "campaign-report", "checkpoint"); Experiment and Seed carry enough of
// the originating request for cache warming and debugging.
type Meta struct {
	Kind       string `json:"kind"`
	Experiment string `json:"experiment,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
}

// Entry is one index row: everything known about a stored payload
// without reading its object file.
type Entry struct {
	Key     string
	Meta    Meta
	Size    int64
	Created int64 // unix nanoseconds
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	Puts        int64 `json:"puts"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Quarantined int64 `json:"quarantined"`
	Evictions   int64 `json:"evictions"`
}

// Options configures Open.
type Options struct {
	// Dir is the store directory; created if absent. Required.
	Dir string
	// MaxBytes bounds the total object bytes; 0 means unbounded.
	// Exceeding the bound evicts least-recently-used evictable entries
	// (see protectedKinds).
	MaxBytes int64
	// Logger receives open/quarantine/GC logs; nil means slog.Default().
	Logger *slog.Logger
}

// protectedKinds are never evicted by the size bound: losing them would
// break campaign resume, which is the whole point of the store.
var protectedKinds = map[string]bool{
	"campaign-spec":  true,
	"campaign-state": true,
	"checkpoint":     true,
}

// rec is the in-memory index record behind an Entry.
type rec struct {
	key     string
	meta    Meta
	size    int64
	created int64
	el      *list.Element // position in the LRU list (front = recent)
}

// Store is a durable key→payload map with atomic writes and a bounded
// footprint. Safe for concurrent use.
type Store struct {
	dir    string
	max    int64
	logger *slog.Logger

	mu        sync.Mutex
	idx       map[string]*rec
	lru       *list.List // of *rec
	bytes     int64
	indexF    *os.File
	deadLines int // index lines superseded since the last compaction
	closed    bool

	puts, hits, misses, quarantined, evictions int64
}

// manifest is the MANIFEST.json schema.
type manifest struct {
	Version int `json:"version"`
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Open opens (or initialises) the store at opts.Dir. It never fails on
// corrupted entries: bad index lines are skipped, bad objects are
// quarantined, and an unreadable manifest is quarantined and rewritten.
// It does fail on a manifest from a newer format version, and on I/O
// errors that make the directory unusable.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: Options.Dir is required")
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	for _, d := range []string{opts.Dir, filepath.Join(opts.Dir, "objects"), filepath.Join(opts.Dir, "quarantine")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{
		dir:    opts.Dir,
		max:    opts.MaxBytes,
		logger: logger,
		idx:    make(map[string]*rec),
		lru:    list.New(),
	}
	if err := s.checkManifest(); err != nil {
		return nil, err
	}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	s.reconcileObjects()

	// Order the LRU by creation time (oldest at the back) so GC after a
	// restart evicts the oldest entries first until real access
	// patterns re-rank them.
	recs := make([]*rec, 0, len(s.idx))
	for _, r := range s.idx {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].created != recs[j].created {
			return recs[i].created < recs[j].created
		}
		return recs[i].key < recs[j].key
	})
	for _, r := range recs {
		r.el = s.lru.PushFront(r)
		s.bytes += r.size
	}

	f, err := os.OpenFile(s.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.indexF = f
	if s.deadLines > len(s.idx) {
		s.compactLocked()
	}
	bindGauges(s)
	metOpens.Inc()
	logger.Debug("store opened", "dir", s.dir, "entries", len(s.idx), "bytes", s.bytes)
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) indexPath() string    { return filepath.Join(s.dir, "index.log") }
func (s *Store) manifestPath() string { return filepath.Join(s.dir, "MANIFEST.json") }

// objectPath maps a key to its object file: keys are arbitrary strings,
// file names are their hex SHA-256.
func (s *Store) objectPath(key string) string {
	return filepath.Join(s.dir, "objects", hashKey(key))
}

func hashKey(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

// checkManifest validates or (re)writes MANIFEST.json. A corrupt
// manifest is quarantined and replaced; a future-version manifest is a
// hard error.
func (s *Store) checkManifest() error {
	data, err := os.ReadFile(s.manifestPath())
	switch {
	case errors.Is(err, os.ErrNotExist):
		return s.writeManifest()
	case err != nil:
		return fmt.Errorf("store: reading manifest: %w", err)
	}
	var m manifest
	if jerr := json.Unmarshal(data, &m); jerr != nil || m.Version <= 0 {
		s.quarantineFile(s.manifestPath(), "manifest")
		return s.writeManifest()
	}
	if m.Version > FormatVersion {
		return fmt.Errorf("store: %s is format version %d, this binary writes version %d", s.manifestPath(), m.Version, FormatVersion)
	}
	return nil
}

func (s *Store) writeManifest() error {
	data, _ := json.Marshal(manifest{Version: FormatVersion})
	return writeFileAtomic(s.manifestPath(), append(data, '\n'))
}

// Put durably stores payload under key, overwriting any previous
// payload. The object write is atomic and fsynced before the index
// records it, so a crash at any instant leaves either the old entry,
// the new entry, or an orphaned-but-complete object that the next open
// adopts.
func (s *Store) Put(key string, payload []byte, meta Meta) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	now := time.Now().UnixNano()
	obj := object{
		Version: FormatVersion,
		Key:     key,
		Meta:    meta,
		Created: now,
		Sum:     payloadSum(payload),
		Payload: payload,
	}
	data, err := json.Marshal(obj)
	if err != nil {
		return fmt.Errorf("store: encoding %q: %w", key, err)
	}
	data = append(data, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := writeFileAtomic(s.objectPath(key), data); err != nil {
		return fmt.Errorf("store: writing %q: %w", key, err)
	}
	size := int64(len(data))
	if old, ok := s.idx[key]; ok {
		s.bytes -= old.size
		old.size = size
		old.meta = meta
		old.created = now
		s.lru.MoveToFront(old.el)
		s.bytes += size
		s.deadLines++
	} else {
		r := &rec{key: key, meta: meta, size: size, created: now}
		r.el = s.lru.PushFront(r)
		s.idx[key] = r
		s.bytes += size
	}
	if err := s.appendIndexLocked(indexLine{Op: opPut, Key: key, Kind: meta.Kind,
		Experiment: meta.Experiment, Seed: meta.Seed, Size: size, Created: now}); err != nil {
		return err
	}
	s.puts++
	metPuts.Inc()
	s.gcLocked()
	s.maybeCompactLocked()
	return nil
}

// Get returns the payload and metadata stored under key. A missing key
// is a plain miss; an entry that fails decoding or checksum
// verification is quarantined, dropped from the index and reported as a
// miss — corruption never surfaces as an error or a wrong payload.
func (s *Store) Get(key string) ([]byte, Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, Meta{}, false
	}
	r, ok := s.idx[key]
	if !ok {
		s.misses++
		metGets.With("miss").Inc()
		return nil, Meta{}, false
	}
	obj, err := readObject(s.objectPath(key))
	if err == nil && obj.Key != key {
		err = fmt.Errorf("object key %q does not match index key", obj.Key)
	}
	if err != nil {
		s.dropCorruptLocked(r, err)
		s.misses++
		metGets.With("miss").Inc()
		return nil, Meta{}, false
	}
	s.lru.MoveToFront(r.el)
	s.hits++
	metGets.With("hit").Inc()
	return obj.Payload, obj.Meta, true
}

// Has reports whether key is indexed, without touching the payload or
// the LRU order.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.idx[key]
	return ok && !s.closed
}

// Delete removes key. Deleting an absent key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	r, ok := s.idx[key]
	if !ok {
		return nil
	}
	return s.removeLocked(r)
}

// DeletePrefix removes every key with the given prefix (campaigns use
// it to drop a finished experiment's checkpoints) and returns how many
// entries were deleted.
func (s *Store) DeletePrefix(prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	n := 0
	for key, r := range s.idx {
		if strings.HasPrefix(key, prefix) {
			if s.removeLocked(r) == nil {
				n++
			}
		}
	}
	return n
}

// removeLocked deletes one entry: object file, index record, LRU node.
func (s *Store) removeLocked(r *rec) error {
	if err := os.Remove(s.objectPath(r.key)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: deleting %q: %w", r.key, err)
	}
	s.forgetLocked(r)
	return s.appendIndexLocked(indexLine{Op: opDel, Key: r.key})
}

// forgetLocked drops a record from the in-memory index without
// touching disk.
func (s *Store) forgetLocked(r *rec) {
	delete(s.idx, r.key)
	s.lru.Remove(r.el)
	s.bytes -= r.size
	s.deadLines++
}

// dropCorruptLocked quarantines a bad object and forgets its record.
func (s *Store) dropCorruptLocked(r *rec, cause error) {
	s.quarantineFile(s.objectPath(r.key), "object")
	s.forgetLocked(r)
	if err := s.appendIndexLocked(indexLine{Op: opDel, Key: r.key}); err != nil {
		s.logger.Warn("store: recording quarantine", "key", r.key, "error", err)
	}
	s.logger.Warn("store: quarantined corrupt entry", "key", r.key, "cause", cause)
}

// quarantineFile moves path into quarantine/ under a unique name and
// counts it. Used for objects, index fragments and manifests alike.
func (s *Store) quarantineFile(path, label string) {
	dst := filepath.Join(s.dir, "quarantine",
		fmt.Sprintf("%s-%d-%s", label, time.Now().UnixNano(), filepath.Base(path)))
	if err := os.Rename(path, dst); err != nil && !errors.Is(err, os.ErrNotExist) {
		// Rename can only really fail across devices; fall back to
		// removal so a corrupt file cannot be re-read forever.
		os.Remove(path)
	}
	s.quarantined++
	metQuarantined.Inc()
}

// gcLocked evicts least-recently-used evictable entries until the
// store fits its byte bound.
func (s *Store) gcLocked() {
	if s.max <= 0 || s.bytes <= s.max {
		return
	}
	for el := s.lru.Back(); el != nil && s.bytes > s.max; {
		r := el.Value.(*rec)
		el = el.Prev()
		if protectedKinds[r.meta.Kind] {
			continue
		}
		if err := s.removeLocked(r); err != nil {
			s.logger.Warn("store: gc", "key", r.key, "error", err)
			continue
		}
		s.evictions++
		metEvictions.Inc()
	}
	if s.bytes > s.max {
		s.logger.Warn("store: over byte bound but nothing evictable",
			"bytes", s.bytes, "max", s.max)
	}
}

// Entries lists the index sorted newest-first (creation time, then key)
// — the order cache warming wants.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.idx))
	for _, r := range s.idx {
		out = append(out, Entry{Key: r.key, Meta: r.meta, Size: r.size, Created: r.created})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Created != out[j].Created {
			return out[i].Created > out[j].Created
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// EntriesByKind filters Entries to one kind.
func (s *Store) EntriesByKind(kind string) []Entry {
	all := s.Entries()
	out := all[:0]
	for _, e := range all {
		if e.Meta.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:     len(s.idx),
		Bytes:       s.bytes,
		Puts:        s.puts,
		Hits:        s.hits,
		Misses:      s.misses,
		Quarantined: s.quarantined,
		Evictions:   s.evictions,
	}
}

// Close compacts the index and releases the file handle. The store
// remains readable on disk; further method calls fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if s.deadLines > 0 {
		s.compactLocked()
	}
	s.closed = true
	if s.indexF != nil {
		return s.indexF.Close()
	}
	return nil
}

// writeFileAtomic writes data to path via a same-directory temp file,
// fsyncs the file, renames it over the target and fsyncs the directory
// — the standard crash-safe publication sequence.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
