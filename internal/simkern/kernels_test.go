package simkern

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/sim"
)

func TestKernelsRegistered(t *testing.T) {
	for _, name := range []string{"coop.ber", "multihop.ber", "cellfree.se", "cellfree.se.mmse"} {
		if _, err := sim.NewKernelBatch(name, nil); err != nil {
			t.Errorf("kernel %q not buildable with defaults: %v", name, err)
		}
	}
}

func TestKernelRejectsBadParams(t *testing.T) {
	cases := []struct {
		kernel string
		params map[string]float64
	}{
		{"coop.ber", map[string]float64{"mt": 2.5}},
		{"coop.ber", map[string]float64{"mt": 9}},
		{"coop.ber", map[string]float64{"bits": -1}},
		{"multihop.ber", map[string]float64{"hops": 0}},
		{"multihop.ber", map[string]float64{"b": 99}},
		{"cellfree.se", map[string]float64{"l": 0}},
		{"cellfree.se", map[string]float64{"l": 2.5}},
		{"cellfree.se", map[string]float64{"tau_c": 4, "tau_p": 4}},
		{"cellfree.se.mmse", map[string]float64{"q": 1.5}},
		{"cellfree.se.mmse", map[string]float64{"n": 128}},
	}
	for _, tc := range cases {
		if _, err := sim.NewKernelBatch(tc.kernel, tc.params); err == nil {
			t.Errorf("%s with %v: want build error, got nil", tc.kernel, tc.params)
		}
	}
}

// TestKernelDeterministic pins the property the distributed executor
// relies on: rebuilding a batch from (kernel, params) and replaying the
// same rng stream yields bit-identical statistics.
func TestKernelDeterministic(t *testing.T) {
	params := map[string]float64{"mt": 2, "mr": 2, "snr_db": 6, "bits": 32}
	run := func() mathx.Running {
		batch, err := sim.NewKernelBatch("coop.ber", params)
		if err != nil {
			t.Fatal(err)
		}
		return batch(mathx.NewRand(42), 50)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different stats: %+v vs %+v", a, b)
	}
	if a.N() != 50 {
		t.Fatalf("N = %d, want 50", a.N())
	}
	if a.Mean() <= 0 || a.Mean() >= 0.5 {
		t.Fatalf("BER mean %v outside (0, 0.5)", a.Mean())
	}
}

// TestCellfreeKernelOrdering checks the cellfree kernels end to end
// through the registry: both are deterministic, both consume identical
// rng streams, and on those shared snapshots the MMSE median SE
// dominates MR's — the ordering the ext-cellfree report asserts.
func TestCellfreeKernelOrdering(t *testing.T) {
	params := map[string]float64{"l": 10, "k": 6, "tau_p": 3}
	run := func(kernel string) mathx.Running {
		batch, err := sim.NewKernelBatch(kernel, params)
		if err != nil {
			t.Fatal(err)
		}
		return batch(mathx.NewRand(7), 20)
	}
	mr, mm := run("cellfree.se"), run("cellfree.se.mmse")
	if mr != run("cellfree.se") {
		t.Fatal("cellfree.se not deterministic")
	}
	if mm != run("cellfree.se.mmse") {
		t.Fatal("cellfree.se.mmse not deterministic")
	}
	if mr.N() != 20 || mm.N() != 20 {
		t.Fatalf("N = %d/%d, want 20", mr.N(), mm.N())
	}
	if !(mr.Mean() > 0) {
		t.Fatalf("MR median SE %v not positive", mr.Mean())
	}
	if mm.Mean() < mr.Mean() {
		t.Fatalf("MMSE median SE %v below MR %v on shared snapshots", mm.Mean(), mr.Mean())
	}
}
