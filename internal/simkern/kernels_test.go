package simkern

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/sim"
)

func TestKernelsRegistered(t *testing.T) {
	for _, name := range []string{"coop.ber", "multihop.ber"} {
		if _, err := sim.NewKernelBatch(name, nil); err != nil {
			t.Errorf("kernel %q not buildable with defaults: %v", name, err)
		}
	}
}

func TestKernelRejectsBadParams(t *testing.T) {
	cases := []struct {
		kernel string
		params map[string]float64
	}{
		{"coop.ber", map[string]float64{"mt": 2.5}},
		{"coop.ber", map[string]float64{"mt": 9}},
		{"coop.ber", map[string]float64{"bits": -1}},
		{"multihop.ber", map[string]float64{"hops": 0}},
		{"multihop.ber", map[string]float64{"b": 99}},
	}
	for _, tc := range cases {
		if _, err := sim.NewKernelBatch(tc.kernel, tc.params); err == nil {
			t.Errorf("%s with %v: want build error, got nil", tc.kernel, tc.params)
		}
	}
}

// TestKernelDeterministic pins the property the distributed executor
// relies on: rebuilding a batch from (kernel, params) and replaying the
// same rng stream yields bit-identical statistics.
func TestKernelDeterministic(t *testing.T) {
	params := map[string]float64{"mt": 2, "mr": 2, "snr_db": 6, "bits": 32}
	run := func() mathx.Running {
		batch, err := sim.NewKernelBatch("coop.ber", params)
		if err != nil {
			t.Fatal(err)
		}
		return batch(mathx.NewRand(42), 50)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different stats: %+v vs %+v", a, b)
	}
	if a.N() != 50 {
		t.Fatalf("N = %d, want 50", a.N())
	}
	if a.Mean() <= 0 || a.Mean() >= 0.5 {
		t.Fatalf("BER mean %v outside (0, 0.5)", a.Mean())
	}
}
