package simkern

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/sim"
)

func TestKernelsRegistered(t *testing.T) {
	for _, name := range []string{"coop.ber", "multihop.ber", "cellfree.se", "cellfree.se.mmse"} {
		if _, err := sim.NewKernelBatch(name, nil); err != nil {
			t.Errorf("kernel %q not buildable with defaults: %v", name, err)
		}
	}
}

func TestKernelRejectsBadParams(t *testing.T) {
	cases := []struct {
		kernel string
		params map[string]float64
	}{
		{"coop.ber", map[string]float64{"mt": 2.5}},
		{"coop.ber", map[string]float64{"mt": 9}},
		{"coop.ber", map[string]float64{"bits": -1}},
		{"multihop.ber", map[string]float64{"hops": 0}},
		{"multihop.ber", map[string]float64{"b": 99}},
		{"cellfree.se", map[string]float64{"l": 0}},
		{"cellfree.se", map[string]float64{"l": 2.5}},
		{"cellfree.se", map[string]float64{"tau_c": 4, "tau_p": 4}},
		{"cellfree.se.mmse", map[string]float64{"q": 1.5}},
		{"cellfree.se.mmse", map[string]float64{"n": 128}},
	}
	for _, tc := range cases {
		if _, err := sim.NewKernelBatch(tc.kernel, tc.params); err == nil {
			t.Errorf("%s with %v: want build error, got nil", tc.kernel, tc.params)
		}
	}
}

// TestKernelDeterministic pins the property the distributed executor
// relies on: rebuilding a batch from (kernel, params) and replaying the
// same rng stream yields bit-identical statistics.
func TestKernelDeterministic(t *testing.T) {
	params := map[string]float64{"mt": 2, "mr": 2, "snr_db": 6, "bits": 32}
	run := func() mathx.Running {
		batch, err := sim.NewKernelBatch("coop.ber", params)
		if err != nil {
			t.Fatal(err)
		}
		return batch(mathx.NewRand(42), 50)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different stats: %+v vs %+v", a, b)
	}
	if a.N() != 50 {
		t.Fatalf("N = %d, want 50", a.N())
	}
	if a.Mean() <= 0 || a.Mean() >= 0.5 {
		t.Fatalf("BER mean %v outside (0, 0.5)", a.Mean())
	}
}

// TestCellfreeKernelOrdering checks the cellfree kernels end to end
// through the registry: both are deterministic, both consume identical
// rng streams, and on those shared snapshots the MMSE median SE
// dominates MR's — the ordering the ext-cellfree report asserts.
func TestCellfreeKernelOrdering(t *testing.T) {
	params := map[string]float64{"l": 10, "k": 6, "tau_p": 3}
	run := func(kernel string) mathx.Running {
		batch, err := sim.NewKernelBatch(kernel, params)
		if err != nil {
			t.Fatal(err)
		}
		return batch(mathx.NewRand(7), 20)
	}
	mr, mm := run("cellfree.se"), run("cellfree.se.mmse")
	if mr != run("cellfree.se") {
		t.Fatal("cellfree.se not deterministic")
	}
	if mm != run("cellfree.se.mmse") {
		t.Fatal("cellfree.se.mmse not deterministic")
	}
	if mr.N() != 20 || mm.N() != 20 {
		t.Fatalf("N = %d/%d, want 20", mr.N(), mm.N())
	}
	if !(mr.Mean() > 0) {
		t.Fatalf("MR median SE %v not positive", mr.Mean())
	}
	if mm.Mean() < mr.Mean() {
		t.Fatalf("MMSE median SE %v below MR %v on shared snapshots", mm.Mean(), mr.Mean())
	}
}

// TestMultihopBatchMatchesScalar pins the SoA tier's contract at the
// registry level: multihop.ber.batch and multihop.ber.scalar (and the
// transport-engine multihop.ber) produce bit-identical statistics from
// the same rng stream, so swapping engines never moves a golden.
func TestMultihopBatchMatchesScalar(t *testing.T) {
	params := map[string]float64{"hops": 3, "mt": 2, "mr": 2, "snr_db": 8, "bits": 240}
	run := func(kernel string) mathx.Running {
		batch, err := sim.NewKernelBatch(kernel, params)
		if err != nil {
			t.Fatal(err)
		}
		return batch(mathx.NewRand(99), 40)
	}
	batch, scalar, transport := run("multihop.ber.batch"), run("multihop.ber.scalar"), run("multihop.ber")
	if batch != scalar {
		t.Fatalf("multihop.ber.batch %+v != multihop.ber.scalar %+v", batch, scalar)
	}
	if batch != transport {
		t.Fatalf("multihop.ber.batch %+v != multihop.ber %+v", batch, transport)
	}
	if batch.N() != 40 {
		t.Fatalf("N = %d, want 40", batch.N())
	}
}

// TestKernelCapsAdvertised: the capability flags the serving tier
// exposes over GET /v1/kernels match what each registration supports.
func TestKernelCapsAdvertised(t *testing.T) {
	for name, want := range map[string]struct {
		batch, adaptive, bernoulli bool
	}{
		"coop.ber":            {false, true, false},
		"coop.ber.batch":      {true, true, false},
		"coop.ber.scalar":     {false, false, false},
		"coop.ber.adaptive":   {true, true, true},
		"multihop.ber":        {false, true, false},
		"multihop.ber.batch":  {true, true, true},
		"multihop.ber.scalar": {false, false, false},
		"cellfree.se":         {false, true, false},
		"cellfree.se.mmse":    {false, true, false},
	} {
		caps, ok := sim.KernelCapsFor(name)
		if !ok {
			t.Errorf("kernel %q unregistered", name)
			continue
		}
		if caps.Batch != want.batch || caps.Adaptive != want.adaptive || (caps.BernoulliUnits != nil) != want.bernoulli {
			t.Errorf("%s caps = {batch %v, adaptive %v, bernoulli %v}, want %+v",
				name, caps.Batch, caps.Adaptive, caps.BernoulliUnits != nil, want)
		}
	}
}

// TestBernoulliUnits: the units functions convert params to the bit
// counts the Wilson stopping rule divides by.
func TestBernoulliUnits(t *testing.T) {
	caps, _ := sim.KernelCapsFor("coop.ber.adaptive")
	if got := caps.BernoulliUnits(map[string]float64{"bits": 128}); got != 128 {
		t.Errorf("coop bits(128) = %g", got)
	}
	if got := caps.BernoulliUnits(nil); got != 64 {
		t.Errorf("coop bits(default) = %g, want 64", got)
	}
	mcaps, _ := sim.KernelCapsFor("multihop.ber.batch")
	// multihop rounds bits up to a multiple of 6*b codewords.
	if got := mcaps.BernoulliUnits(map[string]float64{"bits": 100, "b": 1}); got != 102 {
		t.Errorf("multihop bits(100, b=1) = %g, want 102", got)
	}
}
