package simkern

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cellfree"
	"repro/internal/mathx"
	"repro/internal/sim"
)

func init() {
	// Spectral-efficiency estimates are general means, so adaptive
	// budgets stop them with the CLT rule (no Bernoulli-units cap).
	sim.RegisterKernelCaps("cellfree.se", cellfreeSE(cellfree.CombinerMR),
		sim.KernelCaps{Adaptive: true})
	sim.RegisterKernelCaps("cellfree.se.mmse", cellfreeSE(cellfree.CombinerMMSE),
		sim.KernelCaps{Adaptive: true})
}

// cellfreeSE builds the cell-free uplink SE kernels. One trial draws a
// full network snapshot (internal/cellfree), runs the named combiner
// and reports the q-th quantile of the per-user SE distribution, so a
// campaign over these kernels estimates one point of the CDF of SE.
// Parameters:
//
//	l            access points (default 25)
//	n            antennas per AP (default 1)
//	k            user equipments (default 8)
//	tau_p        orthogonal pilots (default 4)
//	tau_c        coherence block length (default 200)
//	square       deployment square side in metres (default 500)
//	snr_db       per-UE transmit SNR rho in dB (absent = Quick preset's
//	             100 mW over 6.3e-10 mW)
//	shadow_db    shadowing standard deviation in dB (default 8)
//	realizations channel realizations per snapshot (default 1)
//	q            SE quantile to report, in [0, 1] (default 0.5)
//
// Both combiner registrations consume identical rng streams (the
// per-trial seed is drawn before any combiner-specific code), so runs
// of cellfree.se and cellfree.se.mmse with the same plan score the
// same snapshots — which is what makes the MMSE >= MR comparison in
// ext-cellfree exact rather than statistical.
func cellfreeSE(comb cellfree.Combiner) sim.KernelFunc {
	return func(params map[string]float64) (sim.BatchFunc, error) {
		cfg, q, err := cellfreeConfig(params)
		if err != nil {
			return nil, err
		}
		cfg.Combiner = comb
		return func(rng *rand.Rand, n int) mathx.Running {
			ws := cellfree.GetWorkspace()
			defer cellfree.PutWorkspace(ws)
			var acc mathx.Running
			var scratch []float64
			c := cfg
			for i := 0; i < n; i++ {
				c.Seed = rng.Int63()
				r, err := cellfree.RunWith(ws, c)
				if err != nil {
					// Validated at build time; unreachable for a
					// registered run.
					panic(err)
				}
				var v float64
				v, scratch = r.Quantile(q, scratch)
				acc.Add(v)
			}
			return acc
		}, nil
	}
}

// cellfreeConfig builds and validates the cellfree.Config a kernel's
// flat parameters describe, plus the reported SE quantile. The seed is
// a placeholder — trials reseed from the chunk stream.
func cellfreeConfig(params map[string]float64) (cellfree.Config, float64, error) {
	cfg := cellfree.Quick()
	var err error
	if cfg.L, err = intParam(params, "l", cfg.L); err != nil {
		return cfg, 0, err
	}
	if cfg.N, err = intParam(params, "n", cfg.N); err != nil {
		return cfg, 0, err
	}
	if cfg.K, err = intParam(params, "k", cfg.K); err != nil {
		return cfg, 0, err
	}
	if cfg.TauP, err = intParam(params, "tau_p", cfg.TauP); err != nil {
		return cfg, 0, err
	}
	if cfg.TauC, err = intParam(params, "tau_c", cfg.TauC); err != nil {
		return cfg, 0, err
	}
	if cfg.Realizations, err = intParam(params, "realizations", cfg.Realizations); err != nil {
		return cfg, 0, err
	}
	if v, ok := params["square"]; ok {
		cfg.SquareLength = v
	}
	if v, ok := params["shadow_db"]; ok {
		cfg.SigmaShadowDB = v
	}
	if v, ok := params["snr_db"]; ok {
		// Express rho directly: unit noise, power 10^(snr/10) mW.
		cfg.PowerMW = math.Pow(10, v/10)
		cfg.NoiseMW = 1
	}
	q := 0.5
	if v, ok := params["q"]; ok {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return cfg, 0, fmt.Errorf("simkern: quantile q = %v outside [0, 1]", v)
		}
		q = v
	}
	cfg.Seed = 1 // placeholder for validation; trials reseed per draw
	if err := cfg.Validate(); err != nil {
		return cfg, 0, err
	}
	return cfg, q, nil
}
