// Golden cross-checks for the batched kernel registrations: the same
// chunk-seeded plan must produce bit-identical statistics whether the
// trials run through coop.ber.batch (the SoA chunk kernel), coop.ber
// (the default engine) or coop.ber.scalar (the per-block oracle) — on
// the serial pool, the parallel pool and a 3-worker loopback cluster.
// This package is external so it can drive internal/cluster, which
// itself imports simkern for the registrations.
package simkern_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mathx"
	"repro/internal/sim"

	_ "repro/internal/simkern"
)

// goldenParams exercises the impairment branches end to end; bits is
// kept small because the plan spans several chunks of trials.
func goldenParams() []map[string]float64 {
	return []map[string]float64{
		{"mt": 2, "mr": 2, "snr_db": 6, "bits": 16},
		{"mt": 4, "mr": 2, "b": 2, "snr_db": 10, "local_db": 8, "bits": 24},
		{"mt": 1, "mr": 1, "snr_db": 4, "bits": 16},
	}
}

func runKernel(t *testing.T, workers int, kernel string, params map[string]float64, trials int) mathx.Running {
	t.Helper()
	mc := sim.MonteCarlo{Seed: 3, Workers: workers}
	got, err := mc.RunKernelCtx(context.Background(), kernel, params, trials)
	if err != nil {
		t.Fatalf("%s: %v", kernel, err)
	}
	return got
}

// TestBatchKernelGoldenSerialAndParallel pins the registry-level
// identity on the in-process pools: serial (1 worker) and parallel
// (4 workers) runs of all three registrations agree bit for bit.
func TestBatchKernelGoldenSerialAndParallel(t *testing.T) {
	const trials = 2*sim.ChunkSize + 177 // uneven tail chunk
	for pi, params := range goldenParams() {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("params=%d/workers=%d", pi, workers), func(t *testing.T) {
				oracle := runKernel(t, workers, "coop.ber.scalar", params, trials)
				batch := runKernel(t, workers, "coop.ber.batch", params, trials)
				def := runKernel(t, workers, "coop.ber", params, trials)
				if batch != oracle {
					t.Fatalf("coop.ber.batch %+v differs from scalar oracle %+v", batch, oracle)
				}
				if def != oracle {
					t.Fatalf("coop.ber %+v differs from scalar oracle %+v", def, oracle)
				}
			})
		}
	}
}

// TestBatchKernelGoldenCluster shards coop.ber.batch across a 3-worker
// loopback cluster and compares the merged partials against the scalar
// oracle computed locally: distribution must not perturb a single bit.
func TestBatchKernelGoldenCluster(t *testing.T) {
	params := goldenParams()[0]
	run := sim.KernelRun{
		Kernel: "coop.ber.batch",
		Params: params,
		Seed:   3,
		Trials: 5 * sim.ChunkSize,
	}
	oracle := runKernel(t, 2, "coop.ber.scalar", params, run.Trials)

	lb := cluster.NewLoopback("a", "b", "c")
	reg := cluster.NewRegistry(lb, "a", "b", "c")
	co := cluster.NewCoordinator(lb, reg, cluster.Config{Shards: 3})
	parts, err := co.RunShards(context.Background(), run)
	if err != nil {
		t.Fatalf("RunShards: %v", err)
	}
	var merged mathx.Running
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged != oracle {
		t.Fatalf("3-worker cluster %+v differs from local scalar oracle %+v", merged, oracle)
	}
	used := 0
	for _, a := range []string{"a", "b", "c"} {
		if lb.Node(a).Shards() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("only %d workers computed shards; the golden run must actually distribute", used)
	}
}
