// Package simkern registers the repository's named Monte-Carlo kernels
// with the sim registry. A kernel is the transportable form of a trial
// function: a name plus flat numeric parameters, from which any process
// holding this package can rebuild the identical batch. That is what
// lets internal/cluster ship chunk ranges to remote cogmimod workers —
// coordinator and worker both derive the batch from the same
// (kernel, params) pair, so a shard computed anywhere is bit-identical
// to the chunk the local pool would have run.
//
// Import the package (usually transitively, via internal/experiments)
// for its registration side effects.
package simkern

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/coop"
	"repro/internal/mathx"
	"repro/internal/multihop"
	"repro/internal/sim"
)

func init() {
	// Capability flags are discovery metadata (GET /v1/kernels): Batch
	// marks chunk-level SoA entry points, Adaptive marks estimators that
	// are well-defined under sequential stopping, and BernoulliUnits
	// upgrades stopping from CLT to binomial (Wilson) intervals. The
	// scalar oracles stay fixed-budget — they exist to pin the batched
	// kernels, so their spend must never depend on a stopping rule.
	sim.RegisterKernelCaps("coop.ber", coopBER,
		sim.KernelCaps{Adaptive: true})
	sim.RegisterKernelCaps("coop.ber.batch", coopBERBatch,
		sim.KernelCaps{Batch: true, Adaptive: true})
	sim.RegisterKernel("coop.ber.scalar", coopBERScalar)
	sim.RegisterKernelCaps("coop.ber.adaptive", coopBERBatch,
		sim.KernelCaps{Batch: true, Adaptive: true, BernoulliUnits: coopBits})
	sim.RegisterKernelCaps("multihop.ber", multihopBER,
		sim.KernelCaps{Adaptive: true})
	sim.RegisterKernelCaps("multihop.ber.batch", multihopBERBatch,
		sim.KernelCaps{Batch: true, Adaptive: true, BernoulliUnits: multihopBits})
	sim.RegisterKernel("multihop.ber.scalar", multihopBERScalar)
}

// coopBits returns the Bernoulli units one coop.ber trial contributes:
// the transmitted bit count. It lets binomial stopping rules treat the
// BER estimate as k errors in trials*bits bits.
func coopBits(params map[string]float64) float64 {
	bits, err := intParam(params, "bits", 64)
	if err != nil || bits <= 0 {
		return 0
	}
	return float64(bits)
}

// multihopBits returns the Bernoulli units one multihop.ber trial
// contributes: the payload rounded up to whole per-hop blocks, exactly
// as the route engine rounds it.
func multihopBits(params map[string]float64) float64 {
	b, err := intParam(params, "b", 1)
	if err != nil || b < 1 {
		return 0
	}
	bits, err := intParam(params, "bits", 64)
	if err != nil || bits <= 0 {
		return 0
	}
	unit := 6 * b
	if rem := bits % unit; rem != 0 {
		bits += unit - rem
	}
	return float64(bits)
}

// intParam reads an integral parameter, rejecting NaN, fractions and
// out-of-range values so bad requests fail at kernel build time — the
// batch itself has no error channel.
func intParam(params map[string]float64, name string, def int) (int, error) {
	v, ok := params[name]
	if !ok {
		return def, nil
	}
	if math.IsNaN(v) || v != math.Trunc(v) || v < math.MinInt32 || v > math.MaxInt32 {
		return 0, fmt.Errorf("simkern: parameter %q = %v is not a small integer", name, v)
	}
	return int(v), nil
}

// coopBER measures the end-to-end BER of one cooperative hop
// (internal/coop) per trial. Parameters:
//
//	mt, mr   cooperating node counts (default 2x2)
//	b        bits per symbol (default 1)
//	snr_db   long-haul per-bit SNR in dB (default 10)
//	local_db intra-cluster per-bit SNR in dB (absent = ideal links)
//	bits     information bits per trial (default 64)
//
// Each trial reseeds the hop from the chunk stream, so trial t of chunk
// c is the same experiment no matter which worker runs the chunk.
func coopBER(params map[string]float64) (sim.BatchFunc, error) {
	return coopBERWith(params, coop.RunWith)
}

// coopBERBatch is the explicitly-batched registration: the chunk runs
// through coop.RunBatchWith, the SoA chunk kernel, in one call. It is
// bit-identical to coop.ber — each trial still reseeds from the chunk
// stream in the same order — so campaigns and cluster shards can name
// either and merge results freely.
func coopBERBatch(params map[string]float64) (sim.BatchFunc, error) {
	cfg, err := coopConfig(params)
	if err != nil {
		return nil, err
	}
	return func(rng *rand.Rand, n int) mathx.Running {
		ws := coop.GetWorkspace()
		defer coop.PutWorkspace(ws)
		acc, err := coop.RunBatchWith(ws, cfg, rng, n)
		if err != nil {
			// Validated at build time; unreachable for a registered run.
			panic(err)
		}
		return acc
	}, nil
}

// coopBERScalar pins the per-trial scalar oracle under its own name so
// golden runs can cross-check the batched kernels through the same
// registry plumbing (serial, parallel and cluster alike).
func coopBERScalar(params map[string]float64) (sim.BatchFunc, error) {
	return coopBERWith(params, coop.RunScalarWith)
}

// coopConfig builds and validates the coop.Config a kernel's flat
// parameters describe; the seed is a placeholder — trials reseed from
// the chunk stream.
func coopConfig(params map[string]float64) (coop.Config, error) {
	var cfg coop.Config
	mt, err := intParam(params, "mt", 2)
	if err != nil {
		return cfg, err
	}
	mr, err := intParam(params, "mr", 2)
	if err != nil {
		return cfg, err
	}
	b, err := intParam(params, "b", 1)
	if err != nil {
		return cfg, err
	}
	bits, err := intParam(params, "bits", 64)
	if err != nil {
		return cfg, err
	}
	snrDB, ok := params["snr_db"]
	if !ok {
		snrDB = 10
	}
	cfg = coop.Config{
		Mt: mt, Mr: mr, B: b,
		SNRPerBit: math.Pow(10, snrDB/10),
		Bits:      bits,
	}
	if localDB, ok := params["local_db"]; ok {
		cfg.LocalSNRPerBit = math.Pow(10, localDB/10)
	}
	cfg.Seed = 1 // placeholder for validation; trials reseed per draw
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func coopBERWith(params map[string]float64, run func(*coop.Workspace, coop.Config) (coop.Result, error)) (sim.BatchFunc, error) {
	cfg, err := coopConfig(params)
	if err != nil {
		return nil, err
	}
	return func(rng *rand.Rand, n int) mathx.Running {
		ws := coop.GetWorkspace()
		defer coop.PutWorkspace(ws)
		var acc mathx.Running
		c := cfg
		for i := 0; i < n; i++ {
			c.Seed = rng.Int63()
			r, err := run(ws, c)
			if err != nil {
				// Validated above; unreachable for a registered run.
				panic(err)
			}
			acc.Add(r.BER)
		}
		return acc
	}, nil
}

// multihopBER measures the end-to-end BER of a route of identical
// cooperative hops (internal/multihop) per trial. Parameters:
//
//	hops     hop count (default 2)
//	mt, mr   node counts per hop (default 2x2)
//	b        bits per symbol (default 1)
//	snr_db   per-hop per-bit SNR in dB (default 10)
//	bits     payload bits per trial (default 64)
func multihopBER(params map[string]float64) (sim.BatchFunc, error) {
	return multihopBERWith(params, multihop.RunWith)
}

// multihopBERBatch is the chunk-level SoA registration: the chunk runs
// through multihop.RunBatchWith in one call. Bit-identical to
// multihop.ber — each trial still reseeds from the chunk stream in the
// same order — so campaigns and cluster shards can name either.
func multihopBERBatch(params map[string]float64) (sim.BatchFunc, error) {
	cfg, err := multihopConfig(params)
	if err != nil {
		return nil, err
	}
	return func(rng *rand.Rand, n int) mathx.Running {
		ws := multihop.GetWorkspace()
		defer multihop.PutWorkspace(ws)
		acc, err := multihop.RunBatchWith(ws, cfg, rng, n)
		if err != nil {
			// Validated at build time; unreachable for a registered run.
			panic(err)
		}
		return acc
	}, nil
}

// multihopBERScalar pins the per-hop scalar oracle under its own name,
// mirroring coop.ber.scalar, so golden runs can cross-check the batched
// route kernel through the same registry plumbing.
func multihopBERScalar(params map[string]float64) (sim.BatchFunc, error) {
	return multihopBERWith(params, multihop.RunScalarWith)
}

// multihopConfig builds and validates the multihop.Config a kernel's
// flat parameters describe; the seed is a placeholder — trials reseed
// from the chunk stream.
func multihopConfig(params map[string]float64) (multihop.Config, error) {
	var cfg multihop.Config
	hops, err := intParam(params, "hops", 2)
	if err != nil {
		return cfg, err
	}
	if hops < 1 || hops > 16 {
		return cfg, fmt.Errorf("simkern: hop count %d outside [1, 16]", hops)
	}
	mt, err := intParam(params, "mt", 2)
	if err != nil {
		return cfg, err
	}
	mr, err := intParam(params, "mr", 2)
	if err != nil {
		return cfg, err
	}
	b, err := intParam(params, "b", 1)
	if err != nil {
		return cfg, err
	}
	bits, err := intParam(params, "bits", 64)
	if err != nil {
		return cfg, err
	}
	snrDB, ok := params["snr_db"]
	if !ok {
		snrDB = 10
	}
	route := make([]multihop.Hop, hops)
	for i := range route {
		route[i] = multihop.Hop{Mt: mt, Mr: mr, SNRPerBit: math.Pow(10, snrDB/10)}
	}
	cfg = multihop.Config{Hops: route, B: b, Bits: bits, Seed: 1}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func multihopBERWith(params map[string]float64, run func(*multihop.Workspace, multihop.Config) (multihop.Result, error)) (sim.BatchFunc, error) {
	cfg, err := multihopConfig(params)
	if err != nil {
		return nil, err
	}
	return func(rng *rand.Rand, n int) mathx.Running {
		ws := multihop.GetWorkspace()
		defer multihop.PutWorkspace(ws)
		var acc mathx.Running
		c := cfg
		for i := 0; i < n; i++ {
			c.Seed = rng.Int63()
			r, err := run(ws, c)
			if err != nil {
				panic(err)
			}
			acc.Add(r.EndToEndBER)
		}
		return acc
	}, nil
}
