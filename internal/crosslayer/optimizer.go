// Package crosslayer jointly picks per-hop constellation sizes along a
// CoMIMONet route to minimise total energy under an end-to-end latency
// budget — the "multiple optimizations" cross-layer design of the
// paper's CoMIMONet reference [9], expressed over this repository's
// energy (internal/energy) and timing (internal/coop) models.
//
// The trade is real: small constellations are energy-cheap on the PA
// (eq. 3's ēb falls with b at fixed BER... and the circuit term rises),
// but each hop's airtime scales as 1/b, so a tight deadline forces
// denser constellations somewhere. The optimiser solves the coupled
// choice with a Lagrangian sweep: for a price lambda on time, each hop
// independently minimises energy + lambda * time; bisection on lambda
// finds the cheapest plan meeting the deadline.
package crosslayer

import (
	"fmt"
	"math"

	"repro/internal/coop"
	"repro/internal/energy"
	"repro/internal/units"
)

// Hop is one route segment.
type Hop struct {
	// Mt and Mr are the endpoint cluster sizes used for cooperation.
	Mt, Mr int
	// IntraD and LinkD are the cluster span and hop length in metres.
	IntraD, LinkD float64
}

// Config describes the optimisation.
type Config struct {
	// Model prices the energy.
	Model *energy.Model
	// Hops in path order.
	Hops []Hop
	// BER is the per-hop target.
	BER float64
	// Bits is the payload size.
	Bits int
	// SymbolRate is the link symbol rate (symbols/s).
	SymbolRate float64
	// DeadlineS is the end-to-end airtime budget in seconds.
	DeadlineS float64
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Model == nil:
		return fmt.Errorf("crosslayer: nil energy model")
	case len(c.Hops) == 0:
		return fmt.Errorf("crosslayer: empty route")
	case c.BER <= 0 || c.BER >= 1:
		return fmt.Errorf("crosslayer: BER %g outside (0, 1)", c.BER)
	case c.Bits < 1:
		return fmt.Errorf("crosslayer: bit count %d must be positive", c.Bits)
	case c.SymbolRate <= 0:
		return fmt.Errorf("crosslayer: symbol rate %g must be positive", c.SymbolRate)
	case c.DeadlineS <= 0:
		return fmt.Errorf("crosslayer: deadline %g must be positive", c.DeadlineS)
	}
	return nil
}

// option is one feasible (b, energy, time) point for a hop.
type option struct {
	b      int
	energy float64
	time   float64
}

// HopChoice is the optimiser's decision for one hop.
type HopChoice struct {
	B       int
	EnergyJ float64
	TimeS   float64
}

// Plan is the optimised route schedule.
type Plan struct {
	Choices []HopChoice
	// TotalEnergyJ for the payload across all hops and nodes.
	TotalEnergyJ float64
	// TotalTimeS is the end-to-end airtime.
	TotalTimeS float64
}

// Optimize finds the minimum-energy per-hop constellation assignment
// meeting the deadline, or an error when even the fastest feasible
// assignment misses it.
func Optimize(cfg Config) (Plan, error) {
	if err := cfg.Validate(); err != nil {
		return Plan{}, err
	}
	menus := make([][]option, len(cfg.Hops))
	for i, h := range cfg.Hops {
		menu, err := hopMenu(cfg, h)
		if err != nil {
			return Plan{}, fmt.Errorf("crosslayer: hop %d: %w", i, err)
		}
		menus[i] = menu
	}

	plan := assemble(menus, 0)
	if plan.TotalTimeS <= cfg.DeadlineS {
		return plan, nil // the unconstrained optimum already fits
	}
	// Check feasibility at the fastest corner.
	fastest := assemble(menus, math.Inf(1))
	if fastest.TotalTimeS > cfg.DeadlineS {
		return Plan{}, fmt.Errorf("crosslayer: deadline %.4gs infeasible; fastest plan needs %.4gs",
			cfg.DeadlineS, fastest.TotalTimeS)
	}
	// Bisection on the time price.
	lo, hi := 0.0, 1.0
	for assemble(menus, hi).TotalTimeS > cfg.DeadlineS {
		hi *= 4
		if hi > 1e30 {
			return fastest, nil
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-12*hi; iter++ {
		mid := (lo + hi) / 2
		if assemble(menus, mid).TotalTimeS > cfg.DeadlineS {
			lo = mid
		} else {
			hi = mid
		}
	}
	return assemble(menus, hi), nil
}

// hopMenu enumerates the feasible constellation options for one hop.
func hopMenu(cfg Config, h Hop) ([]option, error) {
	var menu []option
	for b := 1; b <= cfg.Model.P.BMax; b++ {
		e, err := hopEnergy(cfg.Model, h, cfg.BER, b)
		if err != nil {
			continue
		}
		t, err := coop.HopTiming(h.Mt, h.Mr, b, cfg.Bits, cfg.SymbolRate)
		if err != nil {
			continue
		}
		menu = append(menu, option{b: b, energy: float64(e) * float64(cfg.Bits), time: t.Total()})
	}
	if len(menu) == 0 {
		return nil, fmt.Errorf("no feasible constellation at BER %g", cfg.BER)
	}
	return menu, nil
}

// hopEnergy totals the per-bit energy of one cooperative hop at fixed b
// (Algorithm 2's accounting over all participating nodes).
func hopEnergy(m *energy.Model, h Hop, ber float64, b int) (units.JoulePerBit, error) {
	tx, err := m.MIMOTx(ber, b, h.Mt, h.Mr, h.LinkD)
	if err != nil {
		return 0, err
	}
	rx, err := m.MIMORx(b)
	if err != nil {
		return 0, err
	}
	total := units.JoulePerBit(float64(h.Mt))*tx.Total() +
		units.JoulePerBit(float64(h.Mr))*rx.Total()
	if h.Mt > 1 || h.Mr > 1 {
		d := h.IntraD
		if d <= 0 {
			d = 0.1
		}
		lt, err := m.LocalTx(ber, b, d)
		if err != nil {
			return 0, err
		}
		locals := 0
		if h.Mt > 1 {
			locals++
		}
		if h.Mr > 1 {
			locals += h.Mr - 1
		}
		total += units.JoulePerBit(float64(locals)) * lt.Total()
	}
	return total, nil
}

// assemble picks each hop's best option at time price lambda. Ties
// break toward less time, so the plan is deterministic and bisection is
// monotone. lambda = +Inf selects the fastest option per hop.
func assemble(menus [][]option, lambda float64) Plan {
	p := Plan{Choices: make([]HopChoice, len(menus))}
	for i, menu := range menus {
		best := menu[0]
		bestCost := cost(best, lambda)
		for _, o := range menu[1:] {
			c := cost(o, lambda)
			if c < bestCost || (c == bestCost && o.time < best.time) {
				best, bestCost = o, c
			}
		}
		p.Choices[i] = HopChoice{B: best.b, EnergyJ: best.energy, TimeS: best.time}
		p.TotalEnergyJ += best.energy
		p.TotalTimeS += best.time
	}
	return p
}

func cost(o option, lambda float64) float64 {
	if math.IsInf(lambda, 1) {
		return o.time
	}
	return o.energy + lambda*o.time
}
