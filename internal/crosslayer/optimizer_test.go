package crosslayer

import (
	"math"
	"testing"

	"repro/internal/ebtable"
	"repro/internal/energy"
)

func cfg(t *testing.T, deadline float64) Config {
	t.Helper()
	model, err := energy.New(energy.Paper(40e3), ebtable.Analytic{})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Model: model,
		Hops: []Hop{
			{Mt: 2, Mr: 3, IntraD: 1, LinkD: 180},
			{Mt: 3, Mr: 2, IntraD: 1, LinkD: 220},
			{Mt: 2, Mr: 2, IntraD: 1, LinkD: 150},
		},
		BER:        0.001,
		Bits:       12000,
		SymbolRate: 40e3,
		DeadlineS:  deadline,
	}
}

func TestValidate(t *testing.T) {
	good := cfg(t, 5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Model = nil },
		func(c *Config) { c.Hops = nil },
		func(c *Config) { c.BER = 0 },
		func(c *Config) { c.Bits = 0 },
		func(c *Config) { c.SymbolRate = 0 },
		func(c *Config) { c.DeadlineS = 0 },
	}
	for i, m := range mutations {
		c := cfg(t, 5)
		m(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestUnconstrainedOptimum(t *testing.T) {
	// A huge deadline lets every hop take its energy-optimal b.
	plan, err := Optimize(cfg(t, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Choices) != 3 {
		t.Fatalf("%d choices", len(plan.Choices))
	}
	// Cross-check each hop against exhaustive search.
	c := cfg(t, 1e9)
	for i, h := range c.Hops {
		bestE := math.Inf(1)
		for b := 1; b <= 16; b++ {
			e, err := hopEnergy(c.Model, h, c.BER, b)
			if err != nil {
				continue
			}
			if v := float64(e) * float64(c.Bits); v < bestE {
				bestE = v
			}
		}
		if math.Abs(plan.Choices[i].EnergyJ-bestE) > 1e-12*bestE {
			t.Errorf("hop %d: chose %v J, exhaustive best %v J", i, plan.Choices[i].EnergyJ, bestE)
		}
	}
}

func TestDeadlineMet(t *testing.T) {
	// Squeeze the deadline below the unconstrained plan's airtime.
	loose, err := Optimize(cfg(t, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	tight := cfg(t, loose.TotalTimeS/3)
	plan, err := Optimize(tight)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalTimeS > tight.DeadlineS*(1+1e-9) {
		t.Errorf("plan time %v exceeds deadline %v", plan.TotalTimeS, tight.DeadlineS)
	}
	// The constrained plan costs at least as much energy.
	if plan.TotalEnergyJ < loose.TotalEnergyJ*(1-1e-9) {
		t.Errorf("constrained plan cheaper than unconstrained: %v vs %v",
			plan.TotalEnergyJ, loose.TotalEnergyJ)
	}
	// And must use denser constellations somewhere.
	denser := false
	for i := range plan.Choices {
		if plan.Choices[i].B > loose.Choices[i].B {
			denser = true
		}
	}
	if !denser {
		t.Error("tight deadline should force a denser constellation on some hop")
	}
}

func TestEnergyMonotoneInDeadline(t *testing.T) {
	loose, err := Optimize(cfg(t, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	prevEnergy := math.Inf(1)
	for _, frac := range []float64{0.25, 0.5, 0.8, 1.5} {
		plan, err := Optimize(cfg(t, loose.TotalTimeS*frac))
		if err != nil {
			t.Fatalf("frac %v: %v", frac, err)
		}
		if plan.TotalEnergyJ > prevEnergy*(1+1e-9) {
			t.Errorf("frac %v: looser deadline raised energy %v -> %v", frac, prevEnergy, plan.TotalEnergyJ)
		}
		prevEnergy = plan.TotalEnergyJ
	}
}

func TestInfeasibleDeadline(t *testing.T) {
	c := cfg(t, 1e-9)
	if _, err := Optimize(c); err == nil {
		t.Error("impossible deadline should fail")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Optimize(cfg(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(cfg(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalEnergyJ != b.TotalEnergyJ || a.TotalTimeS != b.TotalTimeS {
		t.Error("optimiser not deterministic")
	}
}
