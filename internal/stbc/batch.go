package stbc

import (
	"fmt"

	"repro/internal/mathx"
)

// Batched structure-of-arrays codecs. The scalar EncodeInto/DecodeInto
// process one T-by-Nt block at a time: every block pays the generator
// walk, the matrix index arithmetic and the call overhead on loops only
// a handful of iterations long. The batch variants lay N blocks out in
// SoA form — one contiguous lane per generator cell (encode), receive
// sample (t*mr+j), channel tap (j*nt+a) and symbol estimate (decode) —
// and walk the precompiled entry tables once per lane, so the inner
// loops run N long with no branches and hoisted bounds checks.
//
// Every arithmetic operation matches the scalar path exactly (same
// products, same accumulation order), so batched outputs are bitwise
// identical to per-block EncodeInto/DecodeInto: the golden tests in
// batch_test.go pin this for every registered code, including the
// half-rate designs.

// BatchWorkspace holds the decoder's per-element accumulator lanes so
// steady-state batched decoding allocates nothing. A workspace is not
// safe for concurrent use; keep one per worker.
type BatchWorkspace struct {
	acc     mathx.BatchCF64 // multi-term run accumulator
	dot, n2 mathx.BatchF64  // matched-filter sums, lane 0 = real part, 1 = imag
}

// EncodeBatchInto encodes N blocks at once: syms holds K lanes of N
// symbols, x receives T*Nt lanes with lane t*Nt+a carrying generator
// cell (t, a) of every block. Cell values equal EncodeInto's bit for
// bit; structural zeros stay zero.
func (c *Code) EncodeBatchInto(syms, x *mathx.BatchCF64) *mathx.BatchCF64 {
	if syms.Lanes < c.k {
		panic(fmt.Sprintf("stbc: %s encodes %d symbol lanes, got %d", c.name, c.k, syms.Lanes))
	}
	n := syms.N
	x.Resize(len(c.gen)*c.nt, n)
	for t, row := range c.gen {
		for a, e := range row {
			if e.Sym < 0 {
				zeroLane(x.Lane(t*c.nt + a)[:n])
				continue
			}
			encodeCell(x.Lane(t*c.nt+a), syms.Lane(e.Sym)[:n], e)
		}
	}
	return x
}

// EncodeBatchPerAntennaInto is EncodeBatchInto when each transmit
// antenna encodes its own (possibly divergent) symbol copy: symsPerAnt
// must hold Nt batches of K lanes each, and cell (t, a) encodes from
// symsPerAnt[a] — the cooperative-cluster situation where intra-cluster
// bit errors desynchronise the antennas' views of the block. With
// identical batches it reduces exactly to EncodeBatchInto.
func (c *Code) EncodeBatchPerAntennaInto(symsPerAnt []*mathx.BatchCF64, x *mathx.BatchCF64) *mathx.BatchCF64 {
	if len(symsPerAnt) != c.nt {
		panic(fmt.Sprintf("stbc: %s needs %d per-antenna batches, got %d", c.name, c.nt, len(symsPerAnt)))
	}
	n := symsPerAnt[0].N
	x.Resize(len(c.gen)*c.nt, n)
	for t, row := range c.gen {
		for a, e := range row {
			if e.Sym < 0 {
				zeroLane(x.Lane(t*c.nt + a)[:n])
				continue
			}
			encodeCell(x.Lane(t*c.nt+a), symsPerAnt[a].Lane(e.Sym)[:n], e)
		}
	}
	return x
}

// zeroLane clears one structurally-zero generator lane; live lanes are
// fully overwritten by encodeCell and need no clearing.
func zeroLane(dst []complex128) {
	for i := range dst {
		dst[i] = 0
	}
}

// encodeCell fills one generator-cell lane: the same conjugate-then-
// multiply the scalar encoder applies per block, over a whole lane.
func encodeCell(dst, src []complex128, e entry) {
	dst = dst[:len(src)]
	coef := e.Coef
	if e.Conj {
		for i, s := range src {
			dst[i] = coef * complex(real(s), -imag(s))
		}
		return
	}
	for i, s := range src {
		dst[i] = coef * s
	}
}

// TransmitBatchInto passes an encoded batch through per-block channels:
// x holds T*Nt lanes (EncodeBatchInto layout), h holds mr*Nt lanes with
// lane j*Nt+a carrying tap (receive j, transmit a) of every block, and
// y receives T*mr lanes with lane t*mr+j. The accumulation runs over
// a ascending with the scalar MulInto's zero-skip, so y matches
// x.MulInto(h.TransposeInto(...)) per block bit for bit.
//
// noise, when non-nil, must mirror y's T*mr-lane shape; each entry is
// added after that element's last antenna term — the same place the
// scalar path's channel.AWGN call lands — saving a separate
// read-modify-write pass over every y lane.
func (c *Code) TransmitBatchInto(x, h, noise, y *mathx.BatchCF64, mr int) *mathx.BatchCF64 {
	n := x.N
	bl := len(c.gen)
	if h.Lanes != mr*c.nt || h.N != n {
		panic(fmt.Sprintf("stbc: channel batch is %dx%d, need %dx%d", h.Lanes, h.N, mr*c.nt, n))
	}
	if noise != nil && (noise.Lanes != bl*mr || noise.N != n) {
		panic(fmt.Sprintf("stbc: noise batch is %dx%d, need %dx%d", noise.Lanes, noise.N, bl*mr, n))
	}
	y.Resize(bl*mr, n).Zero()
	var colBuf [8]int
	for t := 0; t < bl; t++ {
		// Structurally zero cells transmit whole-lane zeros the scalar
		// multiply would skip element by element; drop those lanes up
		// front and pair the live ones so each pass over a y lane folds
		// in two antennas — half the load/store traffic.
		cols := colBuf[:0]
		for a := 0; a < c.nt; a++ {
			if c.gen[t][a].Sym >= 0 {
				cols = append(cols, a)
			}
		}
		m := len(cols)
		for j := 0; j < mr; j++ {
			yL := y.Lane(t*mr + j)[:n]
			var nzL []complex128
			if noise != nil {
				nzL = noise.Lane(t*mr + j)[:n]
			}
			if m == 3 {
				// Three live antennas (both rate-3/4 designs): fold the
				// whole row — and the noise — into one pass over the lane.
				mulAdd3(yL,
					x.Lane(t*c.nt + cols[0])[:n], h.Lane(j*c.nt + cols[0])[:n],
					x.Lane(t*c.nt + cols[1])[:n], h.Lane(j*c.nt + cols[1])[:n],
					x.Lane(t*c.nt + cols[2])[:n], h.Lane(j*c.nt + cols[2])[:n],
					nzL)
				continue
			}
			ai := 0
			for ; ai+2 < m; ai += 2 {
				mulAdd2(yL,
					x.Lane(t*c.nt + cols[ai])[:n], h.Lane(j*c.nt + cols[ai])[:n],
					x.Lane(t*c.nt + cols[ai+1])[:n], h.Lane(j*c.nt + cols[ai+1])[:n],
					nil)
			}
			switch m - ai {
			case 2:
				mulAdd2(yL,
					x.Lane(t*c.nt + cols[ai])[:n], h.Lane(j*c.nt + cols[ai])[:n],
					x.Lane(t*c.nt + cols[ai+1])[:n], h.Lane(j*c.nt + cols[ai+1])[:n],
					nzL)
			case 1:
				mulAdd1(yL, x.Lane(t*c.nt + cols[ai])[:n], h.Lane(j*c.nt + cols[ai])[:n], nzL)
			default:
				if nzL != nil {
					for i := range yL {
						yL[i] += nzL[i]
					}
				}
			}
		}
	}
	return y
}

// The mulAdd kernels drop the scalar multiply's per-element zero-skip:
// live lanes only branch on it for exactly-zero symbols, and with the
// channel taps finite (Gaussian draws) a zero symbol's product is a
// signed zero, which leaves an accumulator that starts at +0 bit-for-
// bit unchanged — the same result skipping produces. The lanes here
// are always live (structural zeros are excluded by column selection),
// so the unconditional add is bit-identical and branch-free.

// mulAdd1 folds one antenna column into a receive lane, with the
// optional noise tape added after the term — where the scalar AWGN
// pass lands.
func mulAdd1(yL, xL, hL, nzL []complex128) {
	if nzL == nil {
		for i, xv := range xL {
			yL[i] += xv * hL[i]
		}
		return
	}
	for i, xv := range xL {
		v := yL[i]
		v += xv * hL[i]
		yL[i] = v + nzL[i]
	}
}

// mulAdd2 folds two antenna columns (ascending order) into a receive
// lane in one pass, with the optional noise tape added last.
func mulAdd2(yL, xL0, hL0, xL1, hL1, nzL []complex128) {
	if nzL == nil {
		for i := range yL {
			v := yL[i]
			v += xL0[i] * hL0[i]
			v += xL1[i] * hL1[i]
			yL[i] = v
		}
		return
	}
	for i := range yL {
		v := yL[i]
		v += xL0[i] * hL0[i]
		v += xL1[i] * hL1[i]
		yL[i] = v + nzL[i]
	}
}

// mulAdd3 folds three antenna columns (ascending order) into a receive
// lane in one pass, with the optional noise tape added last.
func mulAdd3(yL, xL0, hL0, xL1, hL1, xL2, hL2, nzL []complex128) {
	if nzL == nil {
		for i := range yL {
			v := yL[i]
			v += xL0[i] * hL0[i]
			v += xL1[i] * hL1[i]
			v += xL2[i] * hL2[i]
			yL[i] = v
		}
		return
	}
	for i := range yL {
		v := yL[i]
		v += xL0[i] * hL0[i]
		v += xL1[i] * hL1[i]
		v += xL2[i] * hL2[i]
		yL[i] = v + nzL[i]
	}
}

// DecodeBatchInto matched-filters N received blocks at once: y holds
// T*mr lanes (TransmitBatchInto layout), h the mr*Nt channel lanes, and
// out receives K symbol-estimate lanes. Estimates are bit-identical to
// DecodeInto on each block: the precompiled per-part run tables visit
// exactly the terms the scalar decoder accumulates, in the same order.
func (c *Code) DecodeBatchInto(ws *BatchWorkspace, y, h *mathx.BatchCF64, mr int, out *mathx.BatchCF64) *mathx.BatchCF64 {
	n := y.N
	if y.Lanes != len(c.gen)*mr {
		panic(fmt.Sprintf("stbc: receive batch has %d lanes, code uses %d", y.Lanes, len(c.gen)*mr))
	}
	if h.Lanes != mr*c.nt || h.N != n {
		panic(fmt.Sprintf("stbc: channel batch is %dx%d, need %dx%d", h.Lanes, h.N, mr*c.nt, n))
	}
	out.Resize(c.k, n)
	ws.dot.Resize(2, n)
	ws.n2.Resize(2, n)
	for k := 0; k < c.k; k++ {
		// The real- and imaginary-part basis vectors share the exact run
		// structure (same generator entries, different basis products),
		// so one pass over each h/y lane feeds both parts. Each part's
		// accumulator still sees its terms in the scalar order, keeping
		// the sums bit-identical to two independent part passes.
		reDot, reN2 := ws.dot.Lane(0)[:n], ws.n2.Lane(0)[:n]
		imDot, imN2 := ws.dot.Lane(1)[:n], ws.n2.Lane(1)[:n]
		for i := range reDot {
			reDot[i] = 0
			reN2[i] = 0
			imDot[i] = 0
			imN2[i] = 0
		}
		runs0, runs1 := c.perSymPart[k][0], c.perSymPart[k][1]
		for r := range runs0 {
			run0, run1 := runs0[r], &runs1[r]
			yBase := run0.t * mr
			if len(run0.terms) == 1 {
				// Single-term run (every registered code): fuse the channel
				// product straight into the filter sums, two receive
				// antennas per pass. Each accumulator still sees its adds
				// in ascending-j order, so the sums stay bit-identical to
				// one pass per antenna.
				a := run0.terms[0].a
				ce0, ce1 := run0.terms[0].ce, run1.terms[0].ce
				if imag(ce0) == 0 && real(ce1) == 0 {
					// Every registered code lands here: generator coefs are
					// ±1, so the real-part basis product is purely real and
					// the imaginary-part one purely imaginary. The full
					// complex product ce*h then collapses to two scalar
					// multiplies per part — fl(r*hre - 0*him) is r*hre
					// whenever it is nonzero, and the signed-zero cases
					// vanish into accumulators that hold +0, so the sums
					// stay bit-identical to the general product.
					r, q := real(ce0), imag(ce1)
					decodeRunPure(y, h, yBase, a, c.nt, mr, n, r, q, reDot, reN2, imDot, imN2)
					continue
				}
				j := 0
				for ; j+1 < mr; j += 2 {
					yLa := y.Lane(yBase + j)[:n]
					yLb := y.Lane(yBase + j + 1)[:n]
					hLa := h.Lane(j*c.nt + a)[:n]
					hLb := h.Lane((j+1)*c.nt + a)[:n]
					for i := range yLa {
						ya, yb := yLa[i], yLb[i]
						acc0a := ce0 * hLa[i]
						acc0b := ce0 * hLb[i]
						re0a, im0a := real(acc0a), imag(acc0a)
						re0b, im0b := real(acc0b), imag(acc0b)
						rd := reDot[i]
						rd += re0a * real(ya)
						rd += im0a * imag(ya)
						rd += re0b * real(yb)
						rd += im0b * imag(yb)
						reDot[i] = rd
						rn := reN2[i]
						rn += re0a * re0a
						rn += im0a * im0a
						rn += re0b * re0b
						rn += im0b * im0b
						reN2[i] = rn
						acc1a := ce1 * hLa[i]
						acc1b := ce1 * hLb[i]
						re1a, im1a := real(acc1a), imag(acc1a)
						re1b, im1b := real(acc1b), imag(acc1b)
						id := imDot[i]
						id += re1a * real(ya)
						id += im1a * imag(ya)
						id += re1b * real(yb)
						id += im1b * imag(yb)
						imDot[i] = id
						in := imN2[i]
						in += re1a * re1a
						in += im1a * im1a
						in += re1b * re1b
						in += im1b * im1b
						imN2[i] = in
					}
				}
				for ; j < mr; j++ {
					yL := y.Lane(yBase + j)[:n]
					hL := h.Lane(j*c.nt + a)[:n]
					for i, hv := range hL {
						yv := yL[i]
						yre, yim := real(yv), imag(yv)
						acc0 := ce0 * hv
						re0, im0 := real(acc0), imag(acc0)
						reDot[i] += re0 * yre
						reDot[i] += im0 * yim
						reN2[i] += re0 * re0
						reN2[i] += im0 * im0
						acc1 := ce1 * hv
						re1, im1 := real(acc1), imag(acc1)
						imDot[i] += re1 * yre
						imDot[i] += im1 * yim
						imN2[i] += re1 * re1
						imN2[i] += im1 * im1
					}
				}
				continue
			}
			for j := 0; j < mr; j++ {
				yL := y.Lane(yBase + j)[:n]
				ws.acc.Resize(2, n)
				acc0L := ws.acc.Lane(0)[:n]
				acc1L := ws.acc.Lane(1)[:n]
				for i := range acc0L {
					acc0L[i] = 0
					acc1L[i] = 0
				}
				for ti := range run0.terms {
					hL := h.Lane(j*c.nt + run0.terms[ti].a)[:n]
					ce0, ce1 := run0.terms[ti].ce, run1.terms[ti].ce
					for i, hv := range hL {
						acc0L[i] += ce0 * hv
						acc1L[i] += ce1 * hv
					}
				}
				for i, yv := range yL {
					yre, yim := real(yv), imag(yv)
					acc0 := acc0L[i]
					re0, im0 := real(acc0), imag(acc0)
					reDot[i] += re0 * yre
					reDot[i] += im0 * yim
					reN2[i] += re0 * re0
					reN2[i] += im0 * im0
					acc1 := acc1L[i]
					re1, im1 := real(acc1), imag(acc1)
					imDot[i] += re1 * yre
					imDot[i] += im1 * yim
					imN2[i] += re1 * re1
					imN2[i] += im1 * im1
				}
			}
		}
		outL := out.Lane(k)[:n]
		for i := range outL {
			re, im := 0.0, 0.0
			if reN2[i] > 0 {
				re = reDot[i] / reN2[i]
			}
			if imN2[i] > 0 {
				im = imDot[i] / imN2[i]
			}
			outL[i] = complex(re, im)
		}
	}
	return out
}

// decodeRunPure is the single-term matched-filter pass for the pure
// basis-product case (ce0 real, ce1 imaginary): filter terms become
// r*hre / r*him and -(q*him) / q*hre, halving the multiply count of
// the general complex product while accumulating in exactly the
// scalar decoder's order. Two receive antennas fold per pass.
func decodeRunPure(y, h *mathx.BatchCF64, yBase, a, nt, mr, n int, r, q float64, reDot, reN2, imDot, imN2 []float64) {
	j := 0
	for ; j+1 < mr; j += 2 {
		yLa := y.Lane(yBase + j)[:n]
		yLb := y.Lane(yBase + j + 1)[:n]
		hLa := h.Lane(j*nt + a)[:n]
		hLb := h.Lane((j+1)*nt + a)[:n]
		for i := range yLa {
			ya, yb := yLa[i], yLb[i]
			ha, hb := hLa[i], hLb[i]
			re0a, im0a := r*real(ha), r*imag(ha)
			re0b, im0b := r*real(hb), r*imag(hb)
			rd := reDot[i]
			rd += re0a * real(ya)
			rd += im0a * imag(ya)
			rd += re0b * real(yb)
			rd += im0b * imag(yb)
			reDot[i] = rd
			rn := reN2[i]
			rn += re0a * re0a
			rn += im0a * im0a
			rn += re0b * re0b
			rn += im0b * im0b
			reN2[i] = rn
			re1a, im1a := -(q * imag(ha)), q*real(ha)
			re1b, im1b := -(q * imag(hb)), q*real(hb)
			id := imDot[i]
			id += re1a * real(ya)
			id += im1a * imag(ya)
			id += re1b * real(yb)
			id += im1b * imag(yb)
			imDot[i] = id
			in := imN2[i]
			in += re1a * re1a
			in += im1a * im1a
			in += re1b * re1b
			in += im1b * im1b
			imN2[i] = in
		}
	}
	for ; j < mr; j++ {
		yL := y.Lane(yBase + j)[:n]
		hL := h.Lane(j*nt + a)[:n]
		for i, hv := range hL {
			yv := yL[i]
			yre, yim := real(yv), imag(yv)
			re0, im0 := r*real(hv), r*imag(hv)
			reDot[i] += re0 * yre
			reDot[i] += im0 * yim
			reN2[i] += re0 * re0
			reN2[i] += im0 * im0
			re1, im1 := -(q * imag(hv)), q*real(hv)
			imDot[i] += re1 * yre
			imDot[i] += im1 * yim
			imN2[i] += re1 * re1
			imN2[i] += im1 * im1
		}
	}
}
