package stbc

// The rate-1/2 generalised complex orthogonal designs of Tarokh,
// Jafarkhani and Calderbank: four symbols over eight channel uses for
// three and four transmit antennas. They trade half the rate of the
// rate-3/4 designs for a simpler constant-modulus structure; the
// half-rate ablation benchmark contrasts the two.

// G3Half is the rate-1/2 design for three transmit antennas.
func G3Half() *Code {
	rows := [][3]spec{
		{{0, +1}, {1, +1}, {2, +1}},
		{{1, -1}, {0, +1}, {3, -1}},
		{{2, -1}, {3, +1}, {0, +1}},
		{{3, -1}, {2, -1}, {1, +1}},
	}
	return newCode(&Code{
		name: "G3 (rate 1/2)",
		nt:   3,
		k:    4,
		gen:  buildHalfRate(rows[:]),
	})
}

// G4Half is the rate-1/2 design for four transmit antennas.
func G4Half() *Code {
	rows := [][4]spec{
		{{0, +1}, {1, +1}, {2, +1}, {3, +1}},
		{{1, -1}, {0, +1}, {3, -1}, {2, +1}},
		{{2, -1}, {3, +1}, {0, +1}, {1, -1}},
		{{3, -1}, {2, -1}, {1, +1}, {0, +1}},
	}
	gen := make([][]entry, 0, 8)
	for conj := 0; conj < 2; conj++ {
		for _, r := range rows {
			row := make([]entry, 4)
			for a, s := range r {
				row[a] = entry{Sym: s.sym, Conj: conj == 1, Coef: complex(s.sign, 0)}
			}
			gen = append(gen, row)
		}
	}
	return newCode(&Code{
		name: "G4 (rate 1/2)",
		nt:   4,
		k:    4,
		gen:  gen,
	})
}

// spec is a compact (symbol index, sign) cell used to build the
// half-rate generators: the second four rows repeat the first four with
// every symbol conjugated.
type spec struct {
	sym  int
	sign float64
}

func buildHalfRate(rows [][3]spec) [][]entry {
	gen := make([][]entry, 0, 8)
	for conj := 0; conj < 2; conj++ {
		for _, r := range rows {
			row := make([]entry, 3)
			for a, s := range r {
				row[a] = entry{Sym: s.sym, Conj: conj == 1, Coef: complex(s.sign, 0)}
			}
			gen = append(gen, row)
		}
	}
	return gen
}
