package stbc

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/channel"
	"repro/internal/mathx"
)

func TestHalfRateMetadata(t *testing.T) {
	g3 := G3Half()
	if g3.Nt() != 3 || g3.BlockSymbols() != 4 || g3.BlockLen() != 8 {
		t.Errorf("G3: nt=%d k=%d T=%d", g3.Nt(), g3.BlockSymbols(), g3.BlockLen())
	}
	if g3.Rate() != 0.5 {
		t.Errorf("G3 rate = %v", g3.Rate())
	}
	g4 := G4Half()
	if g4.Nt() != 4 || g4.BlockSymbols() != 4 || g4.BlockLen() != 8 {
		t.Errorf("G4: nt=%d k=%d T=%d", g4.Nt(), g4.BlockSymbols(), g4.BlockLen())
	}
	if g4.Rate() != 0.5 {
		t.Errorf("G4 rate = %v", g4.Rate())
	}
}

// TestHalfRateOrthogonality: X^H X = 2 (sum |s_k|^2) I for the
// half-rate designs (the factor 2 because every symbol appears twice,
// once plain and once conjugated).
func TestHalfRateOrthogonality(t *testing.T) {
	rng := mathx.NewRand(211)
	for _, c := range []*Code{G3Half(), G4Half()} {
		for trial := 0; trial < 30; trial++ {
			syms := make([]complex128, c.BlockSymbols())
			var e float64
			for i := range syms {
				syms[i] = mathx.ComplexCN(rng, 1)
				e += real(syms[i])*real(syms[i]) + imag(syms[i])*imag(syms[i])
			}
			x := c.Encode(syms)
			g := x.ConjTranspose().Mul(x)
			for i := 0; i < c.Nt(); i++ {
				for j := 0; j < c.Nt(); j++ {
					want := complex(0, 0)
					if i == j {
						want = complex(2*e, 0)
					}
					if cmplx.Abs(g.At(i, j)-want) > 1e-9 {
						t.Fatalf("%s: X^H X[%d][%d] = %v, want %v", c.Name(), i, j, g.At(i, j), want)
					}
				}
			}
		}
	}
}

func TestHalfRateNoiselessRoundTrip(t *testing.T) {
	rng := mathx.NewRand(212)
	for _, c := range []*Code{G3Half(), G4Half()} {
		for mr := 1; mr <= 3; mr++ {
			syms := make([]complex128, c.BlockSymbols())
			for i := range syms {
				syms[i] = mathx.ComplexCN(rng, 1)
			}
			h := channel.Rayleigh(rng, c.Nt(), mr)
			got := c.Decode(c.Transmit(c.Encode(syms), h), h)
			for i := range syms {
				if cmplx.Abs(got[i]-syms[i]) > 1e-9 {
					t.Fatalf("%s mr=%d: sym %d decoded %v, want %v", c.Name(), mr, i, got[i], syms[i])
				}
			}
		}
	}
}

// TestHalfRateDiversity: at equal per-bit receive SNR scale the
// half-rate G4 achieves full fourth-order diversity, like OSTBC4.
func TestHalfRateDiversity(t *testing.T) {
	rng := mathx.NewRand(213)
	ber := func(c *Code, snr float64) float64 {
		scale := complex(math.Sqrt(snr*c.Rate()/float64(c.Nt())), 0)
		errs, bits := 0, 0
		for blk := 0; blk < 20000; blk++ {
			h := channel.Rayleigh(rng, c.Nt(), 1)
			b := make([]byte, c.BlockSymbols())
			syms := make([]complex128, c.BlockSymbols())
			for i := range b {
				b[i] = byte(rng.Intn(2))
				syms[i] = complex(1-2*float64(b[i]), 0) * scale
			}
			y := c.Transmit(c.Encode(syms), h)
			channel.AWGN(rng, y.Data, 1)
			for i, est := range c.Decode(y, h) {
				bits++
				var got byte
				if real(est) < 0 {
					got = 1
				}
				if got != b[i] {
					errs++
				}
			}
		}
		return float64(errs) / float64(bits)
	}
	// Diversity slope between 9 and 13 dB should be near 4th order for
	// G4 and clearly steeper than SISO's.
	lo, hi := math.Pow(10, 0.9), math.Pow(10, 1.3)
	g4lo, g4hi := ber(G4Half(), lo), ber(G4Half(), hi)
	if g4hi == 0 {
		t.Skip("not enough errors at high SNR for a slope estimate")
	}
	slope := math.Log10(g4lo/g4hi) / 0.4
	if slope < 2.5 {
		t.Errorf("G4 diversity slope = %v, want >> 1", slope)
	}
}
