package stbc

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/mathx"
)

// TestDecodeIntoMatchesDecode checks the indexed matched filter against
// the allocating decoder on noisy random blocks for every registered
// design, including the half-rate generators that carry each symbol in
// several rows.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	codes := []*Code{SISO(), Alamouti(), OSTBC3(), OSTBC4(), G3Half(), G4Half()}
	rng := mathx.NewRand(42)
	for _, c := range codes {
		for mr := 1; mr <= 3; mr++ {
			syms := make([]complex128, c.BlockSymbols())
			for i := range syms {
				syms[i] = mathx.ComplexCN(rng, 1)
			}
			h := channel.Rayleigh(rng, c.Nt(), mr)
			y := c.Transmit(c.Encode(syms), h)
			channel.AWGN(rng, y.Data, 0.1)

			want := c.Decode(y, h)
			got := c.DecodeInto(y, h, make([]complex128, 0, c.BlockSymbols()))
			for k := range want {
				if got[k] != want[k] {
					t.Errorf("%s mr=%d sym %d: DecodeInto = %v, Decode = %v",
						c.Name(), mr, k, got[k], want[k])
				}
			}
		}
	}
}

// TestDecodeIntoAllocationFree pins the steady-state allocation count of
// the whole encode/transmit/decode round trip with preallocated scratch.
func TestDecodeIntoAllocationFree(t *testing.T) {
	c := Alamouti()
	rng := mathx.NewRand(1)
	syms := []complex128{1 + 1i, -1 + 1i}
	h := channel.Rayleigh(rng, c.Nt(), 2)
	var x, hT, y *mathx.CMat
	est := make([]complex128, c.BlockSymbols())
	x = c.EncodeInto(syms, x)
	hT = h.TransposeInto(hT)
	y = x.MulInto(hT, y)
	allocs := testing.AllocsPerRun(10, func() {
		x = c.EncodeInto(syms, x)
		hT = h.TransposeInto(hT)
		y = x.MulInto(hT, y)
		est = c.DecodeInto(y, h, est)
	})
	if allocs > 0 {
		t.Errorf("in-place round trip allocates %.1f objects per run, want 0", allocs)
	}
}
