package stbc

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/channel"
	"repro/internal/mathx"
	"repro/internal/modulation"
)

func allCodes() []*Code {
	return []*Code{SISO(), Alamouti(), OSTBC3(), OSTBC4()}
}

func TestCodeMetadata(t *testing.T) {
	cases := []struct {
		c         *Code
		nt, k, tl int
		rate      float64
	}{
		{SISO(), 1, 1, 1, 1},
		{Alamouti(), 2, 2, 2, 1},
		{OSTBC3(), 3, 3, 4, 0.75},
		{OSTBC4(), 4, 3, 4, 0.75},
	}
	for _, c := range cases {
		if c.c.Nt() != c.nt || c.c.BlockSymbols() != c.k || c.c.BlockLen() != c.tl {
			t.Errorf("%s: nt=%d k=%d T=%d", c.c.Name(), c.c.Nt(), c.c.BlockSymbols(), c.c.BlockLen())
		}
		if math.Abs(c.c.Rate()-c.rate) > 1e-15 {
			t.Errorf("%s: rate=%v want %v", c.c.Name(), c.c.Rate(), c.rate)
		}
	}
}

func TestForTransmitters(t *testing.T) {
	for mt := 1; mt <= 4; mt++ {
		c, err := ForTransmitters(mt)
		if err != nil {
			t.Fatalf("mt=%d: %v", mt, err)
		}
		if c.Nt() != mt {
			t.Errorf("mt=%d: got code with %d antennas", mt, c.Nt())
		}
	}
	if _, err := ForTransmitters(5); err == nil {
		t.Error("mt=5 should error")
	}
	if _, err := ForTransmitters(0); err == nil {
		t.Error("mt=0 should error")
	}
}

// TestOrthogonality verifies X^H X = (sum |s_k|^2) I for random symbol
// blocks — the defining property of a complex orthogonal design and the
// reason matched filtering is ML.
func TestOrthogonality(t *testing.T) {
	rng := mathx.NewRand(51)
	for _, c := range allCodes() {
		for trial := 0; trial < 50; trial++ {
			syms := make([]complex128, c.BlockSymbols())
			var e float64
			for i := range syms {
				syms[i] = mathx.ComplexCN(rng, 1)
				e += real(syms[i])*real(syms[i]) + imag(syms[i])*imag(syms[i])
			}
			x := c.Encode(syms)
			g := x.ConjTranspose().Mul(x)
			for i := 0; i < c.Nt(); i++ {
				for j := 0; j < c.Nt(); j++ {
					want := complex(0, 0)
					if i == j {
						want = complex(e, 0)
					}
					if cmplx.Abs(g.At(i, j)-want) > 1e-9 {
						t.Fatalf("%s: X^H X [%d][%d] = %v, want %v", c.Name(), i, j, g.At(i, j), want)
					}
				}
			}
		}
	}
}

// TestNoiselessRoundTrip checks Decode(Transmit(Encode(s))) == s for
// every code and a spread of receive antenna counts.
func TestNoiselessRoundTrip(t *testing.T) {
	rng := mathx.NewRand(52)
	for _, c := range allCodes() {
		for mr := 1; mr <= 4; mr++ {
			for trial := 0; trial < 20; trial++ {
				syms := make([]complex128, c.BlockSymbols())
				for i := range syms {
					syms[i] = mathx.ComplexCN(rng, 1)
				}
				h := channel.Rayleigh(rng, c.Nt(), mr)
				y := c.Transmit(c.Encode(syms), h)
				got := c.Decode(y, h)
				for i := range syms {
					if cmplx.Abs(got[i]-syms[i]) > 1e-9 {
						t.Fatalf("%s mr=%d: sym %d decoded %v, want %v", c.Name(), mr, i, got[i], syms[i])
					}
				}
			}
		}
	}
}

func TestEncodePanicsOnWrongBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Encode with wrong block size should panic")
		}
	}()
	Alamouti().Encode([]complex128{1})
}

func TestDecodePanicsOnWrongBlockLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Decode with wrong block length should panic")
		}
	}()
	h := mathx.NewCMat(1, 2)
	Alamouti().Decode(mathx.NewCMat(3, 1), h)
}

func TestTransmitPanicsOnChannelMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Transmit with mismatched channel should panic")
		}
	}()
	c := Alamouti()
	x := c.Encode([]complex128{1, 1i})
	c.Transmit(x, mathx.NewCMat(1, 3))
}

// TestAlamoutiDiversityOrder sends BPSK over Alamouti 2x1 in Rayleigh
// fading and checks the measured BER against the equivalent 2-branch MRC
// closed form: Alamouti 2x1 at total SNR g performs like 2-branch MRC
// with g/2 per branch.
func TestAlamoutiDiversityOrder(t *testing.T) {
	rng := mathx.NewRand(53)
	mod := modulation.MustNew(1)
	c := Alamouti()
	for _, snrDB := range []float64{8, 12} {
		gb := math.Pow(10, snrDB/10)
		// Each antenna transmits at half power so the total is fixed.
		n0 := 1 / gb
		errs, bits := 0, 0
		for blk := 0; blk < 60000; blk++ {
			h := channel.Rayleigh(rng, 2, 1)
			b := []byte{byte(rng.Intn(2)), byte(rng.Intn(2))}
			syms, _ := mod.Modulate(b)
			for i := range syms {
				syms[i] *= complex(math.Sqrt(0.5), 0)
			}
			y := c.Transmit(c.Encode(syms), h)
			channel.AWGN(rng, y.Data, n0)
			est := c.Decode(y, h)
			got := mod.Demodulate(est)
			for i := range b {
				bits++
				if b[i] != got[i] {
					errs++
				}
			}
		}
		got := float64(errs) / float64(bits)
		want := modulation.BERRayleighMRC(2, gb/2)
		if math.Abs(got-want) > 0.25*want+1e-5 {
			t.Errorf("snr=%v dB: Alamouti BER %v vs MRC(2, g/2) %v", snrDB, got, want)
		}
	}
}

// TestOSTBCBeatsSISO confirms the diversity benefit that motivates the
// whole paper: at equal total transmit energy, more cooperative antennas
// give strictly lower Rayleigh BER.
func TestOSTBCBeatsSISO(t *testing.T) {
	rng := mathx.NewRand(54)
	mod := modulation.MustNew(1)
	const snrDB = 10.0
	gb := math.Pow(10, snrDB/10)
	ber := func(c *Code) float64 {
		n0 := 1 / gb
		scale := complex(math.Sqrt(1/float64(c.Nt())), 0)
		errs, bits := 0, 0
		for blk := 0; blk < 30000; blk++ {
			h := channel.Rayleigh(rng, c.Nt(), 1)
			b := make([]byte, c.BlockSymbols())
			for i := range b {
				b[i] = byte(rng.Intn(2))
			}
			syms, _ := mod.Modulate(b)
			for i := range syms {
				syms[i] *= scale
			}
			y := c.Transmit(c.Encode(syms), h)
			channel.AWGN(rng, y.Data, n0)
			got := mod.Demodulate(c.Decode(y, h))
			for i := range b {
				bits++
				if b[i] != got[i] {
					errs++
				}
			}
		}
		return float64(errs) / float64(bits)
	}
	siso := ber(SISO())
	ala := ber(Alamouti())
	o4 := ber(OSTBC4())
	if !(siso > 2*ala) {
		t.Errorf("Alamouti should be far below SISO: %v vs %v", ala, siso)
	}
	if !(ala > o4) {
		t.Errorf("OSTBC4 should beat Alamouti: %v vs %v", o4, ala)
	}
}
