package stbc

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/channel"
	"repro/internal/mathx"
	"repro/internal/modulation"
)

func TestMRCUnbiasedNoiseless(t *testing.T) {
	rng := mathx.NewRand(61)
	for trial := 0; trial < 100; trial++ {
		s := mathx.ComplexCN(rng, 1)
		h := []complex128{mathx.ComplexCN(rng, 1), mathx.ComplexCN(rng, 1), mathx.ComplexCN(rng, 1)}
		y := make([]complex128, len(h))
		for j := range h {
			y[j] = h[j] * s
		}
		if got := MRC(y, h); cmplx.Abs(got-s) > 1e-9 {
			t.Fatalf("MRC biased: %v vs %v", got, s)
		}
		if got := EGC(y, h); cmplx.Abs(got-s) > 1e-9 {
			t.Fatalf("EGC biased: %v vs %v", got, s)
		}
		if got := SelectionCombine(y, h); cmplx.Abs(got-s) > 1e-9 {
			t.Fatalf("Selection biased: %v vs %v", got, s)
		}
	}
}

func TestCombinersDegenerate(t *testing.T) {
	if MRC([]complex128{1}, []complex128{0}) != 0 {
		t.Error("MRC with zero channel should return 0")
	}
	if EGC([]complex128{1}, []complex128{0}) != 0 {
		t.Error("EGC with zero channel should return 0")
	}
	if SelectionCombine([]complex128{5}, []complex128{0}) != 0 {
		t.Error("Selection with zero channel should return 0")
	}
}

func TestCombinersPanicOnMismatch(t *testing.T) {
	for name, f := range map[string]func(){
		"MRC":       func() { MRC(make([]complex128, 2), make([]complex128, 3)) },
		"EGC":       func() { EGC(make([]complex128, 2), make([]complex128, 3)) },
		"Selection": func() { SelectionCombine(make([]complex128, 2), make([]complex128, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}

// TestCombinerHierarchy measures BPSK BER over 1x3 Rayleigh SIMO: MRC
// must beat EGC, EGC must beat selection, and all must beat single-branch.
func TestCombinerHierarchy(t *testing.T) {
	rng := mathx.NewRand(62)
	const snrDB = 6.0
	gb := math.Pow(10, snrDB/10)
	n0 := 1 / gb
	mod := modulation.MustNew(1)
	const trials = 150000
	var errMRC, errEGC, errSel, errSingle int
	for i := 0; i < trials; i++ {
		bit := []byte{byte(rng.Intn(2))}
		s, _ := mod.Modulate(bit)
		h := []complex128{mathx.ComplexCN(rng, 1), mathx.ComplexCN(rng, 1), mathx.ComplexCN(rng, 1)}
		y := make([]complex128, 3)
		for j := range y {
			y[j] = h[j] * s[0]
		}
		channel.AWGN(rng, y, n0)
		decide := func(z complex128) bool {
			return mod.Demodulate([]complex128{z})[0] != bit[0]
		}
		if decide(MRC(y, h)) {
			errMRC++
		}
		if decide(EGC(y, h)) {
			errEGC++
		}
		if decide(SelectionCombine(y, h)) {
			errSel++
		}
		if decide(y[0] / h[0]) {
			errSingle++
		}
	}
	if !(errMRC <= errEGC && errEGC < errSel && errSel < errSingle) {
		t.Errorf("combiner hierarchy violated: MRC=%d EGC=%d Sel=%d single=%d",
			errMRC, errEGC, errSel, errSingle)
	}
	// MRC should match the 3-branch closed form.
	got := float64(errMRC) / trials
	want := modulation.BERRayleighMRC(3, gb)
	if math.Abs(got-want) > 0.25*want+1e-5 {
		t.Errorf("MRC BER %v vs closed form %v", got, want)
	}
}
