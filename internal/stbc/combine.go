package stbc

import (
	"fmt"
	"math/cmplx"
)

// MRC maximal-ratio combines per-branch observations y_j = h_j*s + n_j
// into a single soft symbol estimate. It is the optimal SIMO receiver the
// overlay paradigm's Step 1 (Pt -> m SUs over a 1-by-m SIMO link) relies
// on, and it normalises so the estimate is unbiased.
func MRC(y, h []complex128) complex128 {
	if len(y) != len(h) {
		panic(fmt.Sprintf("stbc: MRC branch mismatch %d vs %d", len(y), len(h)))
	}
	var num complex128
	var den float64
	for j := range y {
		num += cmplx.Conj(h[j]) * y[j]
		a := real(h[j])*real(h[j]) + imag(h[j])*imag(h[j])
		den += a
	}
	if den == 0 {
		return 0
	}
	return num / complex(den, 0)
}

// EGC equal-gain combines branches: each branch is co-phased but not
// weighted by its amplitude. The Section 6.4 overlay experiments use
// equal-gain combination at the receiver, so the testbed implements it
// faithfully rather than substituting MRC.
func EGC(y, h []complex128) complex128 {
	if len(y) != len(h) {
		panic(fmt.Sprintf("stbc: EGC branch mismatch %d vs %d", len(y), len(h)))
	}
	var num complex128
	var den float64
	for j := range y {
		a := cmplx.Abs(h[j])
		if a == 0 {
			continue
		}
		phase := h[j] / complex(a, 0)
		num += cmplx.Conj(phase) * y[j]
		den += a
	}
	if den == 0 {
		return 0
	}
	return num / complex(den, 0)
}

// SelectionCombine picks the branch with the strongest channel gain —
// the cheapest diversity combiner, included as a baseline for the
// combining-ablation benchmark.
func SelectionCombine(y, h []complex128) complex128 {
	if len(y) != len(h) {
		panic(fmt.Sprintf("stbc: selection branch mismatch %d vs %d", len(y), len(h)))
	}
	best, bestGain := complex128(0), -1.0
	for j := range y {
		if g := cmplx.Abs(h[j]); g > bestGain {
			bestGain = g
			if h[j] != 0 {
				best = y[j] / h[j]
			} else {
				best = 0
			}
		}
	}
	return best
}
