package stbc

import (
	"fmt"
	"testing"

	"repro/internal/mathx"
)

// batchTestCodes lists every registered design, including the
// half-rate constructions — the batch kernels must match the scalar
// path on all of them.
func batchTestCodes() []*Code {
	return []*Code{SISO(), Alamouti(), OSTBC3(), OSTBC4(), G3Half(), G4Half()}
}

func randomSyms(rng interface{ NormFloat64() float64 }, k, n int) *mathx.BatchCF64 {
	b := mathx.NewBatchCF64(k, n)
	for i := range b.Data {
		b.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return b
}

// TestEncodeBatchMatchesScalar pins bit-identity of the SoA encoder
// against per-block EncodeInto for every registered code.
func TestEncodeBatchMatchesScalar(t *testing.T) {
	const n = 33
	for _, code := range batchTestCodes() {
		rng := mathx.NewRand(11)
		syms := randomSyms(rng, code.BlockSymbols(), n)
		var x mathx.BatchCF64
		code.EncodeBatchInto(syms, &x)

		blockSyms := make([]complex128, code.BlockSymbols())
		var want mathx.CMat
		for i := 0; i < n; i++ {
			for k := range blockSyms {
				blockSyms[k] = syms.At(k, i)
			}
			code.EncodeInto(blockSyms, &want)
			for tt := 0; tt < code.BlockLen(); tt++ {
				for a := 0; a < code.Nt(); a++ {
					if got := x.At(tt*code.Nt()+a, i); got != want.At(tt, a) {
						t.Fatalf("%s block %d cell (%d,%d): batch %v, scalar %v",
							code.Name(), i, tt, a, got, want.At(tt, a))
					}
				}
			}
		}
	}
}

// TestEncodeBatchPerAntennaMatchesScalar checks the divergent-copy
// encoder: cell (t,a) must encode antenna a's own symbol view, exactly
// as the scalar cooperative path does when intra-cluster errors
// desynchronise the copies.
func TestEncodeBatchPerAntennaMatchesScalar(t *testing.T) {
	const n = 19
	for _, code := range batchTestCodes() {
		rng := mathx.NewRand(13)
		perAnt := make([]*mathx.BatchCF64, code.Nt())
		for a := range perAnt {
			perAnt[a] = randomSyms(rng, code.BlockSymbols(), n)
		}
		var x mathx.BatchCF64
		code.EncodeBatchPerAntennaInto(perAnt, &x)

		blockSyms := make([]complex128, code.BlockSymbols())
		var want mathx.CMat
		for i := 0; i < n; i++ {
			for a := 0; a < code.Nt(); a++ {
				for k := range blockSyms {
					blockSyms[k] = perAnt[a].At(k, i)
				}
				code.EncodeInto(blockSyms, &want)
				for tt := 0; tt < code.BlockLen(); tt++ {
					if got := x.At(tt*code.Nt()+a, i); got != want.At(tt, a) {
						t.Fatalf("%s block %d cell (%d,%d): batch %v, scalar %v",
							code.Name(), i, tt, a, got, want.At(tt, a))
					}
				}
			}
		}
	}
}

// TestTransmitBatchMatchesScalar pins the batched channel pass — with
// and without the fused noise tape — against the scalar Y = X*H^T plus
// a separate noise add, for every code and 1..4 receive antennas.
func TestTransmitBatchMatchesScalar(t *testing.T) {
	const n = 29
	for _, code := range batchTestCodes() {
		for mr := 1; mr <= 4; mr++ {
			t.Run(fmt.Sprintf("%s/mr=%d", code.Name(), mr), func(t *testing.T) {
				rng := mathx.NewRand(int64(17 + mr))
				syms := randomSyms(rng, code.BlockSymbols(), n)
				var x, h, nz, y mathx.BatchCF64
				code.EncodeBatchInto(syms, &x)
				h.Resize(mr*code.Nt(), n)
				for i := range h.Data {
					h.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				nz.Resize(code.BlockLen()*mr, n)
				for i := range nz.Data {
					nz.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}

				check := func(noise *mathx.BatchCF64) {
					t.Helper()
					code.TransmitBatchInto(&x, &h, noise, &y, mr)
					var xm, hm, hT, want mathx.CMat
					blockSyms := make([]complex128, code.BlockSymbols())
					for i := 0; i < n; i++ {
						for k := range blockSyms {
							blockSyms[k] = syms.At(k, i)
						}
						code.EncodeInto(blockSyms, &xm)
						h.GatherMat(i, mr, code.Nt(), &hm)
						xm.MulInto(hm.TransposeInto(&hT), &want)
						for tt := 0; tt < code.BlockLen(); tt++ {
							for j := 0; j < mr; j++ {
								w := want.At(tt, j)
								if noise != nil {
									w += noise.At(tt*mr+j, i)
								}
								if got := y.At(tt*mr+j, i); got != w {
									t.Fatalf("block %d sample (%d,%d) noise=%v: batch %v, scalar %v",
										i, tt, j, noise != nil, got, w)
								}
							}
						}
					}
				}
				check(nil)
				check(&nz)
			})
		}
	}
}

// TestDecodeBatchMatchesScalar pins the batched matched filter against
// DecodeInto bit for bit, across every code and receive count — the
// identity the whole SoA tier hangs off, since decode is where the
// specialised pure-rotation kernels live.
func TestDecodeBatchMatchesScalar(t *testing.T) {
	const n = 41
	for _, code := range batchTestCodes() {
		for mr := 1; mr <= 4; mr++ {
			t.Run(fmt.Sprintf("%s/mr=%d", code.Name(), mr), func(t *testing.T) {
				rng := mathx.NewRand(int64(23 + mr))
				var y, h, out mathx.BatchCF64
				y.Resize(code.BlockLen()*mr, n)
				for i := range y.Data {
					y.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				h.Resize(mr*code.Nt(), n)
				for i := range h.Data {
					h.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				var ws BatchWorkspace
				code.DecodeBatchInto(&ws, &y, &h, mr, &out)

				var ym, hm mathx.CMat
				est := make([]complex128, code.BlockSymbols())
				for i := 0; i < n; i++ {
					y.GatherMat(i, code.BlockLen(), mr, &ym)
					h.GatherMat(i, mr, code.Nt(), &hm)
					est = code.DecodeInto(&ym, &hm, est)
					for k := range est {
						if got := out.At(k, i); got != est[k] {
							t.Fatalf("block %d symbol %d: batch %v, scalar %v", i, k, got, est[k])
						}
					}
				}
			})
		}
	}
}
