// Package stbc implements the space-time block codes the cooperative
// links are "coded with ... (such as Alamouti code)" (Section 2.3):
// SISO passthrough, the Alamouti code for two cooperative transmitters,
// and the rate-3/4 complex orthogonal designs for three and four
// transmitters, plus the MRC/EGC receive combiners the testbed uses.
//
// Codes are described by a symbolic T-by-Nt generator whose entries are
// 0, ±s_k, or ±conj(s_k); encoding instantiates the generator, and
// decoding builds the equivalent real-valued channel matrix, which for
// orthogonal designs is column-orthogonal, so matched filtering is
// maximum-likelihood per symbol.
package stbc

import (
	"fmt"
	"math/cmplx"

	"repro/internal/mathx"
)

// entry is one generator cell: Coef * s_Sym, conjugated if Conj.
// Sym < 0 means the cell transmits nothing.
type entry struct {
	Sym  int
	Conj bool
	Coef complex128
}

// Code is an orthogonal space-time block code.
type Code struct {
	name string
	nt   int       // transmit antennas
	k    int       // symbols per block
	gen  [][]entry // T x Nt generator
}

// Name returns the code's human-readable name.
func (c *Code) Name() string { return c.name }

// Nt returns the number of transmit antennas.
func (c *Code) Nt() int { return c.nt }

// BlockSymbols returns K, the symbols carried per block.
func (c *Code) BlockSymbols() int { return c.k }

// BlockLen returns T, the channel uses per block.
func (c *Code) BlockLen() int { return len(c.gen) }

// Rate returns K/T.
func (c *Code) Rate() float64 { return float64(c.k) / float64(len(c.gen)) }

// SISO is the trivial single-antenna "code".
func SISO() *Code {
	return &Code{
		name: "SISO",
		nt:   1,
		k:    1,
		gen:  [][]entry{{{Sym: 0, Coef: 1}}},
	}
}

// Alamouti is the rate-1 orthogonal design for two transmit antennas.
func Alamouti() *Code {
	return &Code{
		name: "Alamouti",
		nt:   2,
		k:    2,
		gen: [][]entry{
			{{Sym: 0, Coef: 1}, {Sym: 1, Coef: 1}},
			{{Sym: 1, Conj: true, Coef: -1}, {Sym: 0, Conj: true, Coef: 1}},
		},
	}
}

// OSTBC3 is the rate-3/4 complex orthogonal design for three antennas.
func OSTBC3() *Code {
	n := entry{Sym: -1}
	return &Code{
		name: "OSTBC3 (rate 3/4)",
		nt:   3,
		k:    3,
		gen: [][]entry{
			{{Sym: 0, Coef: 1}, {Sym: 1, Coef: 1}, {Sym: 2, Coef: 1}},
			{{Sym: 1, Conj: true, Coef: -1}, {Sym: 0, Conj: true, Coef: 1}, n},
			{{Sym: 2, Conj: true, Coef: -1}, n, {Sym: 0, Conj: true, Coef: 1}},
			{n, {Sym: 2, Conj: true, Coef: -1}, {Sym: 1, Conj: true, Coef: 1}},
		},
	}
}

// OSTBC4 is the rate-3/4 complex orthogonal design for four antennas.
func OSTBC4() *Code {
	n := entry{Sym: -1}
	return &Code{
		name: "OSTBC4 (rate 3/4)",
		nt:   4,
		k:    3,
		gen: [][]entry{
			{{Sym: 0, Coef: 1}, {Sym: 1, Coef: 1}, {Sym: 2, Coef: 1}, n},
			{{Sym: 1, Conj: true, Coef: -1}, {Sym: 0, Conj: true, Coef: 1}, n, {Sym: 2, Coef: 1}},
			{{Sym: 2, Conj: true, Coef: -1}, n, {Sym: 0, Conj: true, Coef: 1}, {Sym: 1, Coef: -1}},
			{n, {Sym: 2, Conj: true, Coef: -1}, {Sym: 1, Conj: true, Coef: 1}, {Sym: 0, Coef: 1}},
		},
	}
}

// ForTransmitters returns the code the paper's clusters would run for the
// given cooperative transmitter count (1..4).
func ForTransmitters(mt int) (*Code, error) {
	switch mt {
	case 1:
		return SISO(), nil
	case 2:
		return Alamouti(), nil
	case 3:
		return OSTBC3(), nil
	case 4:
		return OSTBC4(), nil
	default:
		return nil, fmt.Errorf("stbc: no orthogonal design registered for mt=%d", mt)
	}
}

// Encode maps one block of K symbols to the T-by-Nt transmit matrix
// (row = channel use, column = antenna).
func (c *Code) Encode(syms []complex128) *mathx.CMat {
	if len(syms) != c.k {
		panic(fmt.Sprintf("stbc: %s encodes %d symbols, got %d", c.name, c.k, len(syms)))
	}
	x := mathx.NewCMat(len(c.gen), c.nt)
	for t, row := range c.gen {
		for a, e := range row {
			if e.Sym < 0 {
				continue
			}
			s := syms[e.Sym]
			if e.Conj {
				s = cmplx.Conj(s)
			}
			x.Set(t, a, e.Coef*s)
		}
	}
	return x
}

// Transmit passes an encoded block through channel h (mr-by-nt) and
// returns the noiseless T-by-mr receive matrix. Per-antenna amplitudes
// are not rescaled here; energy policy belongs to the caller.
func (c *Code) Transmit(x *mathx.CMat, h *mathx.CMat) *mathx.CMat {
	if h.Cols != c.nt {
		panic(fmt.Sprintf("stbc: channel has %d tx ports, code needs %d", h.Cols, c.nt))
	}
	// y[t][j] = sum_a x[t][a] * h[j][a]  =>  Y = X * H^T.
	return x.Mul(h.Transpose())
}

// Decode matched-filters the received T-by-mr block y against channel h
// and returns the K soft symbol estimates. For orthogonal designs this is
// exact per-symbol maximum likelihood; estimates are normalised so that,
// absent noise, Decode(Transmit(Encode(s), h), h) == s.
func (c *Code) Decode(y, h *mathx.CMat) []complex128 {
	t, mr := y.Rows, y.Cols
	if t != len(c.gen) {
		panic(fmt.Sprintf("stbc: block length %d, code uses %d", t, len(c.gen)))
	}
	dim := 2 * t * mr
	// Real-valued receive vector.
	yv := make([]float64, dim)
	for i := 0; i < t; i++ {
		for j := 0; j < mr; j++ {
			yv[2*(i*mr+j)] = real(y.At(i, j))
			yv[2*(i*mr+j)+1] = imag(y.At(i, j))
		}
	}
	out := make([]complex128, c.k)
	basis := make([]complex128, c.k)
	col := make([]float64, dim)
	for k := 0; k < c.k; k++ {
		var reDot, reN2, imDot, imN2 float64
		for part := 0; part < 2; part++ {
			for i := range basis {
				basis[i] = 0
			}
			if part == 0 {
				basis[k] = 1
			} else {
				basis[k] = 1i
			}
			c.noiselessColumn(basis, h, col)
			dot, n2 := 0.0, 0.0
			for i, v := range col {
				dot += v * yv[i]
				n2 += v * v
			}
			if part == 0 {
				reDot, reN2 = dot, n2
			} else {
				imDot, imN2 = dot, n2
			}
		}
		re, im := 0.0, 0.0
		if reN2 > 0 {
			re = reDot / reN2
		}
		if imN2 > 0 {
			im = imDot / imN2
		}
		out[k] = complex(re, im)
	}
	return out
}

// noiselessColumn writes the real-valued receive vector produced by the
// given symbol block through h into dst.
func (c *Code) noiselessColumn(syms []complex128, h *mathx.CMat, dst []float64) {
	mr := h.Rows
	for t, row := range c.gen {
		for j := 0; j < mr; j++ {
			var acc complex128
			for a, e := range row {
				if e.Sym < 0 {
					continue
				}
				s := syms[e.Sym]
				if e.Conj {
					s = cmplx.Conj(s)
				}
				acc += e.Coef * s * h.At(j, a)
			}
			dst[2*(t*mr+j)] = real(acc)
			dst[2*(t*mr+j)+1] = imag(acc)
		}
	}
}
