// Package stbc implements the space-time block codes the cooperative
// links are "coded with ... (such as Alamouti code)" (Section 2.3):
// SISO passthrough, the Alamouti code for two cooperative transmitters,
// and the rate-3/4 complex orthogonal designs for three and four
// transmitters, plus the MRC/EGC receive combiners the testbed uses.
//
// Codes are described by a symbolic T-by-Nt generator whose entries are
// 0, ±s_k, or ±conj(s_k); encoding instantiates the generator, and
// decoding builds the equivalent real-valued channel matrix, which for
// orthogonal designs is column-orthogonal, so matched filtering is
// maximum-likelihood per symbol.
package stbc

import (
	"fmt"
	"math/cmplx"

	"repro/internal/mathx"
)

// entry is one generator cell: Coef * s_Sym, conjugated if Conj.
// Sym < 0 means the cell transmits nothing.
type entry struct {
	Sym  int
	Conj bool
	Coef complex128
}

// symEntry locates one generator cell carrying a given symbol: row t,
// antenna a, conjugation flag and coefficient. The decoder walks these
// lists instead of scanning the full T-by-Nt generator for every basis
// vector, which keeps the matched filter allocation-free and skips the
// structural zeros.
type symEntry struct {
	t, a int
	conj bool
	coef complex128
}

// batchTerm is one matched-filter term of the batched decoder: antenna
// column a and the precomputed basis product ce = Coef * sv, where sv
// is the (possibly conjugated) ±1/±i basis value of the part. The
// scalar decoder computes e.coef * sv * h left-to-right, so folding
// the exact product e.coef*sv into ce leaves every remaining operation
// — one complex multiply by h — identical.
type batchTerm struct {
	a  int
	ce complex128
}

// batchRun groups the terms of one symbol sharing generator row t,
// exactly the row runs DecodeInto discovers by scanning; precomputing
// them lets the batched decoder skip the scan and the per-entry
// conjugation branch.
type batchRun struct {
	t     int
	terms []batchTerm
}

// Code is an orthogonal space-time block code.
type Code struct {
	name string
	nt   int       // transmit antennas
	k    int       // symbols per block
	gen  [][]entry // T x Nt generator

	// perSym[k] lists the generator cells transmitting symbol k in
	// row-major order, precomputed at construction.
	perSym [][]symEntry

	// perSymPart[k][part] is the batched-decoder index: the row runs
	// of symbol k with the part's basis value folded into each term.
	perSymPart [][2][]batchRun
}

// newCode finalises a code: it indexes the generator by symbol so the
// decode hot path never rescans it, and precompiles the per-part run
// tables the batched decoder streams over.
func newCode(c *Code) *Code {
	c.perSym = make([][]symEntry, c.k)
	for t, row := range c.gen {
		for a, e := range row {
			if e.Sym < 0 {
				continue
			}
			c.perSym[e.Sym] = append(c.perSym[e.Sym],
				symEntry{t: t, a: a, conj: e.Conj, coef: e.Coef})
		}
	}
	c.perSymPart = make([][2][]batchRun, c.k)
	for k, entries := range c.perSym {
		for part := 0; part < 2; part++ {
			s := complex(1, 0)
			if part == 1 {
				s = complex(0, 1)
			}
			var runs []batchRun
			for start := 0; start < len(entries); {
				row := entries[start].t
				end := start + 1
				for end < len(entries) && entries[end].t == row {
					end++
				}
				run := batchRun{t: row}
				for _, e := range entries[start:end] {
					sv := s
					if e.conj {
						sv = cmplx.Conj(sv)
					}
					run.terms = append(run.terms, batchTerm{a: e.a, ce: e.coef * sv})
				}
				runs = append(runs, run)
				start = end
			}
			c.perSymPart[k][part] = runs
		}
	}
	return c
}

// Name returns the code's human-readable name.
func (c *Code) Name() string { return c.name }

// Nt returns the number of transmit antennas.
func (c *Code) Nt() int { return c.nt }

// BlockSymbols returns K, the symbols carried per block.
func (c *Code) BlockSymbols() int { return c.k }

// BlockLen returns T, the channel uses per block.
func (c *Code) BlockLen() int { return len(c.gen) }

// Rate returns K/T.
func (c *Code) Rate() float64 { return float64(c.k) / float64(len(c.gen)) }

// SISO is the trivial single-antenna "code".
func SISO() *Code {
	return newCode(&Code{
		name: "SISO",
		nt:   1,
		k:    1,
		gen:  [][]entry{{{Sym: 0, Coef: 1}}},
	})
}

// Alamouti is the rate-1 orthogonal design for two transmit antennas.
func Alamouti() *Code {
	return newCode(&Code{
		name: "Alamouti",
		nt:   2,
		k:    2,
		gen: [][]entry{
			{{Sym: 0, Coef: 1}, {Sym: 1, Coef: 1}},
			{{Sym: 1, Conj: true, Coef: -1}, {Sym: 0, Conj: true, Coef: 1}},
		},
	})
}

// OSTBC3 is the rate-3/4 complex orthogonal design for three antennas.
func OSTBC3() *Code {
	n := entry{Sym: -1}
	return newCode(&Code{
		name: "OSTBC3 (rate 3/4)",
		nt:   3,
		k:    3,
		gen: [][]entry{
			{{Sym: 0, Coef: 1}, {Sym: 1, Coef: 1}, {Sym: 2, Coef: 1}},
			{{Sym: 1, Conj: true, Coef: -1}, {Sym: 0, Conj: true, Coef: 1}, n},
			{{Sym: 2, Conj: true, Coef: -1}, n, {Sym: 0, Conj: true, Coef: 1}},
			{n, {Sym: 2, Conj: true, Coef: -1}, {Sym: 1, Conj: true, Coef: 1}},
		},
	})
}

// OSTBC4 is the rate-3/4 complex orthogonal design for four antennas.
func OSTBC4() *Code {
	n := entry{Sym: -1}
	return newCode(&Code{
		name: "OSTBC4 (rate 3/4)",
		nt:   4,
		k:    3,
		gen: [][]entry{
			{{Sym: 0, Coef: 1}, {Sym: 1, Coef: 1}, {Sym: 2, Coef: 1}, n},
			{{Sym: 1, Conj: true, Coef: -1}, {Sym: 0, Conj: true, Coef: 1}, n, {Sym: 2, Coef: 1}},
			{{Sym: 2, Conj: true, Coef: -1}, n, {Sym: 0, Conj: true, Coef: 1}, {Sym: 1, Coef: -1}},
			{n, {Sym: 2, Conj: true, Coef: -1}, {Sym: 1, Conj: true, Coef: 1}, {Sym: 0, Coef: 1}},
		},
	})
}

// registered holds one immutable instance per transmitter count; codes
// are read-only after construction, so every caller can share them and
// the per-symbol decode index is built exactly once per process.
var registered = [5]*Code{nil, SISO(), Alamouti(), OSTBC3(), OSTBC4()}

// ForTransmitters returns the code the paper's clusters would run for the
// given cooperative transmitter count (1..4). The returned code is a
// shared immutable instance; construction cost is paid once per process.
func ForTransmitters(mt int) (*Code, error) {
	if mt < 1 || mt >= len(registered) {
		return nil, fmt.Errorf("stbc: no orthogonal design registered for mt=%d", mt)
	}
	return registered[mt], nil
}

// Encode maps one block of K symbols to the T-by-Nt transmit matrix
// (row = channel use, column = antenna).
func (c *Code) Encode(syms []complex128) *mathx.CMat {
	return c.EncodeInto(syms, nil)
}

// EncodeInto is Encode writing into x (reshaped as needed; allocated
// when nil), so per-block encoding can reuse one scratch matrix.
func (c *Code) EncodeInto(syms []complex128, x *mathx.CMat) *mathx.CMat {
	if len(syms) != c.k {
		panic(fmt.Sprintf("stbc: %s encodes %d symbols, got %d", c.name, c.k, len(syms)))
	}
	x = mathx.EnsureShape(x, len(c.gen), c.nt).Zero()
	for t, row := range c.gen {
		for a, e := range row {
			if e.Sym < 0 {
				continue
			}
			s := syms[e.Sym]
			if e.Conj {
				s = cmplx.Conj(s)
			}
			x.Set(t, a, e.Coef*s)
		}
	}
	return x
}

// Transmit passes an encoded block through channel h (mr-by-nt) and
// returns the noiseless T-by-mr receive matrix. Per-antenna amplitudes
// are not rescaled here; energy policy belongs to the caller.
func (c *Code) Transmit(x *mathx.CMat, h *mathx.CMat) *mathx.CMat {
	if h.Cols != c.nt {
		panic(fmt.Sprintf("stbc: channel has %d tx ports, code needs %d", h.Cols, c.nt))
	}
	// y[t][j] = sum_a x[t][a] * h[j][a]  =>  Y = X * H^T.
	return x.Mul(h.Transpose())
}

// Decode matched-filters the received T-by-mr block y against channel h
// and returns the K soft symbol estimates. For orthogonal designs this is
// exact per-symbol maximum likelihood; estimates are normalised so that,
// absent noise, Decode(Transmit(Encode(s), h), h) == s.
func (c *Code) Decode(y, h *mathx.CMat) []complex128 {
	return c.DecodeInto(y, h, nil)
}

// DecodeInto is Decode writing the estimates into out (grown as needed),
// so per-block decoding allocates nothing in steady state. It walks the
// precomputed per-symbol generator index rather than scanning all T*Nt
// cells per basis vector, visiting exactly the terms the dense matched
// filter would accumulate, in the same order, so the estimates match
// Decode bit for bit.
func (c *Code) DecodeInto(y, h *mathx.CMat, out []complex128) []complex128 {
	t, mr := y.Rows, y.Cols
	if t != len(c.gen) {
		panic(fmt.Sprintf("stbc: block length %d, code uses %d", t, len(c.gen)))
	}
	if cap(out) < c.k {
		out = make([]complex128, c.k)
	}
	out = out[:c.k]
	for k := 0; k < c.k; k++ {
		var reDot, reN2, imDot, imN2 float64
		entries := c.perSym[k]
		for part := 0; part < 2; part++ {
			s := complex(1, 0)
			if part == 1 {
				s = complex(0, 1)
			}
			dot, n2 := 0.0, 0.0
			// Entries are row-major, so consecutive runs share a row t.
			for start := 0; start < len(entries); {
				row := entries[start].t
				end := start + 1
				for end < len(entries) && entries[end].t == row {
					end++
				}
				for j := 0; j < mr; j++ {
					var acc complex128
					for _, e := range entries[start:end] {
						sv := s
						if e.conj {
							sv = cmplx.Conj(sv)
						}
						acc += e.coef * sv * h.At(j, e.a)
					}
					re, im := real(acc), imag(acc)
					yv := y.At(row, j)
					dot += re * real(yv)
					dot += im * imag(yv)
					n2 += re * re
					n2 += im * im
				}
				start = end
			}
			if part == 0 {
				reDot, reN2 = dot, n2
			} else {
				imDot, imN2 = dot, n2
			}
		}
		re, im := 0.0, 0.0
		if reN2 > 0 {
			re = reDot / reN2
		}
		if imN2 > 0 {
			im = imDot / imN2
		}
		out[k] = complex(re, im)
	}
	return out
}
