package interweave

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/underlay"
)

// TransmissionPlan is the outcome of Algorithm 3's Step 2: after
// pairing, the data transmission runs Algorithm 2 over a
// floor(mt/2)-by-mr MIMO link, so the energy accounting is the underlay
// hop's with halved transmit diversity — the price of the null.
type TransmissionPlan struct {
	// Pairs is floor(mt/2).
	Pairs int
	// Receivers is mr.
	Receivers int
	// Report is the Algorithm 2 accounting for the effective link.
	Report underlay.HopReport
	// NullOverheadRatio compares the plan's total PA energy against the
	// same hop without pairing (full mt transmitters, no null): the
	// interference protection's energy cost factor.
	NullOverheadRatio float64
}

// PlanTransmission sizes Algorithm 3's data phase: mt transmitters pair
// up and run Algorithm 2 toward mr receivers over linkD metres at the
// target BER.
func PlanTransmission(model *energy.Model, mt, mr int, intraD, linkD, ber float64) (TransmissionPlan, error) {
	pairs, receivers, err := EffectiveLink(mt, mr)
	if err != nil {
		return TransmissionPlan{}, err
	}
	if model == nil {
		return TransmissionPlan{}, fmt.Errorf("interweave: nil energy model")
	}
	paired, err := underlay.Analyze(underlay.Config{
		Model: model, Mt: pairs, Mr: receivers,
		IntraD: intraD, LinkD: linkD, BER: ber,
	})
	if err != nil {
		return TransmissionPlan{}, fmt.Errorf("interweave: paired hop: %w", err)
	}
	unpaired, err := underlay.Analyze(underlay.Config{
		Model: model, Mt: mt, Mr: receivers,
		IntraD: intraD, LinkD: linkD, BER: ber,
	})
	if err != nil {
		return TransmissionPlan{}, fmt.Errorf("interweave: unpaired reference: %w", err)
	}
	return TransmissionPlan{
		Pairs:             pairs,
		Receivers:         receivers,
		Report:            paired,
		NullOverheadRatio: float64(paired.TotalPA) / float64(unpaired.TotalPA),
	}, nil
}
