package interweave

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mathx"
)

func TestEffectiveLink(t *testing.T) {
	cases := []struct {
		mt, mr       int
		pairs, recvs int
		wantErr      bool
	}{
		{2, 2, 1, 2, false},
		{3, 1, 1, 1, false}, // floor(3/2) = 1
		{4, 3, 2, 3, false},
		{5, 2, 2, 2, false},
		{1, 2, 0, 0, true},
		{2, 0, 0, 0, true},
	}
	for _, c := range cases {
		p, r, err := EffectiveLink(c.mt, c.mr)
		if c.wantErr {
			if err == nil {
				t.Errorf("EffectiveLink(%d,%d) should fail", c.mt, c.mr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("EffectiveLink(%d,%d): %v", c.mt, c.mr, err)
		}
		if p != c.pairs || r != c.recvs {
			t.Errorf("EffectiveLink(%d,%d) = %d,%d want %d,%d", c.mt, c.mr, p, r, c.pairs, c.recvs)
		}
	}
}

func TestSelectPUPrefersAxisAndDistance(t *testing.T) {
	st1, st2 := geom.Pt(0, 7.5), geom.Pt(0, -7.5)
	sr := geom.Pt(150, 0)
	candidates := []geom.Point{
		geom.Pt(100, 0),  // broadside, near: worst (kills gain at Sr)
		geom.Pt(0, -120), // on-axis, far: best
		geom.Pt(5, 60),   // near-axis, closer
	}
	sel, err := SelectPU(st1, st2, sr, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Index != 1 {
		t.Errorf("picked candidate %d (%v), want the far on-axis one", sel.Index, sel.Pos)
	}
	if _, err := SelectPU(st1, st2, sr, nil); err == nil {
		t.Error("empty candidate list should fail")
	}
}

func TestRunTrialValidation(t *testing.T) {
	cfg := PaperTrialConfig()
	cfg.NumPUs = 0
	if _, err := RunTrial(cfg, mathx.NewRand(1)); err == nil {
		t.Error("zero PUs should fail")
	}
	cfg = PaperTrialConfig()
	cfg.PUDiscRadius = 0
	if _, err := RunTrial(cfg, mathx.NewRand(1)); err == nil {
		t.Error("zero disc should fail")
	}
}

// TestTable1Reproduction runs the paper's Table 1 experiment: ten
// trials, each scattering 20 PUs, picking one, and measuring the
// beamformed amplitude at Sr. The paper reports an average of 1.87
// (1.87-1.89 per row); our geometry reproduces a near-full diversity
// amplitude in [1.7, 2.0] with a deep null at the picked Pr.
func TestTable1Reproduction(t *testing.T) {
	rng := mathx.NewRand(63)
	rows, avg, err := RunTable(PaperTrialConfig(), rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	if avg < 1.7 || avg > 2.0 {
		t.Errorf("average amplitude at Sr = %v, paper reports 1.87", avg)
	}
	for i, r := range rows {
		if r.AmplitudeAtSr < 1.5 || r.AmplitudeAtSr > 2.0 {
			t.Errorf("row %d: amplitude %v outside [1.5, 2]", i, r.AmplitudeAtSr)
		}
		// The null must hold: interference at the picked Pr far below the
		// SISO amplitude of 1.
		if r.AmplitudeAtPr > 0.2 {
			t.Errorf("row %d: residual at Pr = %v, want near zero", i, r.AmplitudeAtPr)
		}
		// Table 1's picked PRs hug the pair axis (x near 0 relative to y).
		if math.Abs(r.PickedPr.X) > math.Abs(r.PickedPr.Y) {
			t.Errorf("row %d: picked Pr %v not near the pair axis", i, r.PickedPr)
		}
	}
}

// TestDiversityGainBeatsSISO is the Section 6.3 conclusion: the pair
// delivers ~1.87x the SISO amplitude, i.e. ~3.5x the received power, at
// no interference cost to the primary.
func TestDiversityGainBeatsSISO(t *testing.T) {
	rng := mathx.NewRand(64)
	_, avg, err := RunTable(PaperTrialConfig(), rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	const siso = 1.0
	if avg <= 1.5*siso {
		t.Errorf("beamformed amplitude %v should be well above SISO %v", avg, siso)
	}
}

func TestRunTableValidation(t *testing.T) {
	if _, _, err := RunTable(PaperTrialConfig(), mathx.NewRand(1), 0); err == nil {
		t.Error("zero trials should fail")
	}
}

func TestRunTableDeterminism(t *testing.T) {
	r1, a1, err := RunTable(PaperTrialConfig(), mathx.NewRand(9), 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, a2, err := RunTable(PaperTrialConfig(), mathx.NewRand(9), 5)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("averages differ: %v vs %v", a1, a2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("row %d differs", i)
		}
	}
}
