package interweave

import (
	"testing"

	"repro/internal/ebtable"
	"repro/internal/energy"
)

func planModel(t *testing.T) *energy.Model {
	t.Helper()
	m, err := energy.New(energy.Paper(40e3), ebtable.Analytic{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPlanTransmission(t *testing.T) {
	m := planModel(t)
	p, err := PlanTransmission(m, 4, 2, 1, 200, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pairs != 2 || p.Receivers != 2 {
		t.Errorf("effective link %dx%d, want 2x2", p.Pairs, p.Receivers)
	}
	if p.Report.TotalPA <= 0 {
		t.Errorf("empty report: %+v", p.Report)
	}
	// Halving the transmit diversity costs energy: the null has a price.
	if p.NullOverheadRatio <= 1 {
		t.Errorf("null overhead ratio = %v, want > 1", p.NullOverheadRatio)
	}
	if p.NullOverheadRatio > 20 {
		t.Errorf("null overhead ratio = %v suspiciously large", p.NullOverheadRatio)
	}
}

func TestPlanValidation(t *testing.T) {
	m := planModel(t)
	if _, err := PlanTransmission(m, 1, 2, 1, 200, 0.001); err == nil {
		t.Error("mt=1 cannot pair")
	}
	if _, err := PlanTransmission(nil, 4, 2, 1, 200, 0.001); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := PlanTransmission(m, 4, 0, 1, 200, 0.001); err == nil {
		t.Error("mr=0 should fail")
	}
	if _, err := PlanTransmission(m, 4, 2, 1, 0, 0.001); err == nil {
		t.Error("zero distance should fail")
	}
}

func TestPlanScalesWithPairs(t *testing.T) {
	m := planModel(t)
	two, err := PlanTransmission(m, 4, 2, 1, 200, 0.001) // 2 pairs
	if err != nil {
		t.Fatal(err)
	}
	one, err := PlanTransmission(m, 2, 2, 1, 200, 0.001) // 1 pair
	if err != nil {
		t.Fatal(err)
	}
	// More pairs = more diversity on the effective link = less total PA.
	if two.Report.TotalPA >= one.Report.TotalPA {
		t.Errorf("2 pairs (%v) should need less PA than 1 (%v)",
			two.Report.TotalPA, one.Report.TotalPA)
	}
}
