// Package interweave implements Algorithm 3 and the Section 6.3
// analysis: secondary transmitters pair up into null-steering
// beamformers (internal/beamform) so they can share a primary user's
// spectrum with no interference at its receiver, while the pair still
// delivers close to the full 2x diversity amplitude at the secondary
// receiver. The data transmission itself then follows Algorithm 2 over
// an (mt/2)-by-mr MIMO link.
package interweave

import (
	"fmt"
	"math/rand"

	"repro/internal/beamform"
	"repro/internal/geom"
)

// PUSelection scores a candidate primary receiver for Step 1 of
// Algorithm 3: the head picks the PU "as far as possible from C-St
// and/or [so that] the line segments of C-St Pr and C-St C-Sr are not as
// collinear as possible" — operationally (and consistently with the
// paper's Table 1 picks), a Pr that is far away and close to the pair's
// own axis, i.e. as orthogonal as possible to the St->Sr look direction,
// so that nulling Pr costs no gain at Sr.
type PUSelection struct {
	Index int
	Pos   geom.Point
	Score float64
}

// SelectPU picks the best primary receiver from candidates for the pair
// (st1, st2) transmitting toward sr. The score is the candidate's
// distance from the pair midpoint times its alignment with the pair
// axis (1 - |sin| of the angle off-axis at St1): Table 1's picked Prs
// all hug the axis.
func SelectPU(st1, st2, sr geom.Point, candidates []geom.Point) (PUSelection, error) {
	if len(candidates) == 0 {
		return PUSelection{}, fmt.Errorf("interweave: no candidate PUs")
	}
	mid := geom.Midpoint(st1, st2)
	best := PUSelection{Index: -1}
	for i, c := range candidates {
		offAxis := geom.Collinearity(c, st1, st2) // |sin|: 0 = on-axis
		score := c.Dist(mid) * (1 - offAxis)
		if best.Index < 0 || score > best.Score {
			best = PUSelection{Index: i, Pos: c, Score: score}
		}
	}
	return best, nil
}

// EffectiveLink returns the MIMO link dimensions Algorithm 3 hands to
// Algorithm 2 after pairing: floor(mt/2) transmit pairs by mr receivers.
func EffectiveLink(mt, mr int) (pairs, receivers int, err error) {
	if mt < 2 {
		return 0, 0, fmt.Errorf("interweave: need at least 2 transmitters to form a pair, got %d", mt)
	}
	if mr < 1 {
		return 0, 0, fmt.Errorf("interweave: need at least 1 receiver, got %d", mr)
	}
	return mt / 2, mr, nil
}

// TrialConfig parameterises one Table 1 simulation trial.
type TrialConfig struct {
	// St1 and St2 are the pair positions (paper: 15 m apart on the
	// vertical axis, straddling the origin).
	St1, St2 geom.Point
	// Sr is the secondary receiver (broadside of the pair).
	Sr geom.Point
	// Wavelength w; the paper sets r = w/2, i.e. w = 2 * spacing.
	Wavelength float64
	// NumPUs candidates are scattered uniformly in a disc centred on St1.
	NumPUs int
	// PUDiscRadius is that disc's radius (paper: diameter 300 m).
	PUDiscRadius float64
}

// PaperTrialConfig reproduces the Section 6.3 setup. Sr sits slightly
// off broadside: the paper's measured average of 1.87 (rather than the
// full 2.00) pins the residual phase between the pair's waves at Sr to
// about 0.7 rad, which this geometry yields.
func PaperTrialConfig() TrialConfig {
	return TrialConfig{
		St1:          geom.Pt(0, 7.5),
		St2:          geom.Pt(0, -7.5),
		Sr:           geom.Pt(150, 34),
		Wavelength:   30, // r = w/2 with the 15 m spacing
		NumPUs:       20,
		PUDiscRadius: 150,
	}
}

// TrialResult is one Table 1 row.
type TrialResult struct {
	// PickedPr is the location of the selected primary receiver.
	PickedPr geom.Point
	// AmplitudeAtSr is the pairwise beamformed amplitude at the
	// secondary receiver, normalised so a SISO transmitter gives 1.
	AmplitudeAtSr float64
	// AmplitudeAtPr is the residual amplitude at the nulled primary.
	AmplitudeAtPr float64
}

// RunTrial scatters PUs, selects one, builds the null-steering pair and
// measures the amplitudes — one row of Table 1.
func RunTrial(cfg TrialConfig, rng *rand.Rand) (TrialResult, error) {
	if cfg.NumPUs < 1 {
		return TrialResult{}, fmt.Errorf("interweave: need at least one PU, got %d", cfg.NumPUs)
	}
	if cfg.PUDiscRadius <= 0 {
		return TrialResult{}, fmt.Errorf("interweave: PU disc radius %g must be positive", cfg.PUDiscRadius)
	}
	candidates := make([]geom.Point, cfg.NumPUs)
	for i := range candidates {
		candidates[i] = geom.RandomInDisc(rng, cfg.St1, cfg.PUDiscRadius)
	}
	sel, err := SelectPU(cfg.St1, cfg.St2, cfg.Sr, candidates)
	if err != nil {
		return TrialResult{}, err
	}
	pair, err := beamform.NewNullPair(cfg.St1, cfg.St2, sel.Pos, cfg.Wavelength)
	if err != nil {
		return TrialResult{}, err
	}
	return TrialResult{
		PickedPr:      sel.Pos,
		AmplitudeAtSr: pair.AmplitudeAt(cfg.Sr),
		AmplitudeAtPr: pair.AmplitudeAt(sel.Pos),
	}, nil
}

// RunTable repeats RunTrial the requested number of times (the paper:
// ten) and returns the rows plus the average amplitude at Sr.
func RunTable(cfg TrialConfig, rng *rand.Rand, trials int) ([]TrialResult, float64, error) {
	if trials < 1 {
		return nil, 0, fmt.Errorf("interweave: trials %d must be positive", trials)
	}
	rows := make([]TrialResult, 0, trials)
	sum := 0.0
	for i := 0; i < trials; i++ {
		r, err := RunTrial(cfg, rng)
		if err != nil {
			return nil, 0, err
		}
		rows = append(rows, r)
		sum += r.AmplitudeAtSr
	}
	return rows, sum / float64(trials), nil
}
