// Package units provides typed physical quantities and the decibel
// conversions used throughout the cooperative-MIMO energy model.
//
// Internally the library works in SI units (watts, joules, metres, hertz,
// seconds). Decibel forms (dB, dBm, dBi) appear only at configuration
// boundaries, mirroring how the paper states its system constants
// (e.g. Ml = 40 dB, sigma^2 = -174 dBm/Hz).
package units

import (
	"fmt"
	"math"
)

// DB is a dimensionless power ratio expressed in decibels.
type DB float64

// DBm is an absolute power level referenced to one milliwatt.
type DBm float64

// Watt is power in watts.
type Watt float64

// Joule is energy in joules.
type Joule float64

// JoulePerBit is an energy cost normalised per transported bit.
type JoulePerBit float64

// Meter is distance in metres.
type Meter float64

// Hertz is frequency or bandwidth in hertz.
type Hertz float64

// Second is a duration in seconds.
type Second float64

// Linear converts a decibel ratio to its linear equivalent.
func (d DB) Linear() float64 { return math.Pow(10, float64(d)/10) }

// FromLinear converts a linear power ratio to decibels.
func FromLinear(ratio float64) DB {
	return DB(10 * math.Log10(ratio))
}

// Watts converts an absolute dBm level to watts.
func (d DBm) Watts() Watt {
	return Watt(math.Pow(10, (float64(d)-30)/10))
}

// WattsToDBm converts watts to dBm.
func WattsToDBm(w Watt) DBm {
	return DBm(10*math.Log10(float64(w)) + 30)
}

// DBmPerHzToWattsPerHz converts a spectral density in dBm/Hz to W/Hz.
// The paper's noise parameters sigma^2 = -174 dBm/Hz and N0 = -171 dBm/Hz
// are stated this way.
func DBmPerHzToWattsPerHz(d float64) float64 {
	return math.Pow(10, (d-30)/10)
}

// MilliWatt constructs a Watt value from milliwatts; the paper quotes its
// circuit powers (Pct, Pcr, Psyn) in mW.
func MilliWatt(mw float64) Watt { return Watt(mw / 1000) }

// String implementations keep experiment reports readable.

func (d DB) String() string          { return fmt.Sprintf("%.2f dB", float64(d)) }
func (d DBm) String() string         { return fmt.Sprintf("%.2f dBm", float64(d)) }
func (w Watt) String() string        { return fmt.Sprintf("%.4g W", float64(w)) }
func (j Joule) String() string       { return fmt.Sprintf("%.4g J", float64(j)) }
func (j JoulePerBit) String() string { return fmt.Sprintf("%.4g J/bit", float64(j)) }
func (m Meter) String() string       { return fmt.Sprintf("%.2f m", float64(m)) }
func (h Hertz) String() string       { return fmt.Sprintf("%.4g Hz", float64(h)) }
func (s Second) String() string      { return fmt.Sprintf("%.4g s", float64(s)) }
