package units

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return diff < tol
	}
	return diff/scale < tol
}

func TestDBLinear(t *testing.T) {
	cases := []struct {
		db   DB
		want float64
	}{
		{0, 1},
		{10, 10},
		{3, 1.9952623149688795},
		{-10, 0.1},
		{40, 1e4},               // Ml = 40 dB
		{5, 3.1622776601683795}, // GtGr = 5 dBi
	}
	for _, c := range cases {
		if got := c.db.Linear(); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("DB(%v).Linear() = %v, want %v", c.db, got, c.want)
		}
	}
}

func TestFromLinearRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		ratio := math.Abs(x)
		if ratio < 1e-12 || ratio > 1e12 || math.IsNaN(ratio) || math.IsInf(ratio, 0) {
			return true // out of interesting domain
		}
		back := FromLinear(ratio).Linear()
		return almostEqual(back, ratio, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBmWatts(t *testing.T) {
	cases := []struct {
		dbm  DBm
		want Watt
	}{
		{0, 1e-3},
		{30, 1},
		{-30, 1e-6},
		{10, 1e-2},
	}
	for _, c := range cases {
		if got := c.dbm.Watts(); !almostEqual(float64(got), float64(c.want), 1e-12) {
			t.Errorf("DBm(%v).Watts() = %v, want %v", c.dbm, got, c.want)
		}
	}
}

func TestWattsToDBmRoundTrip(t *testing.T) {
	f := func(exp float64) bool {
		d := DBm(math.Mod(exp, 200)) // keep within sane dynamic range
		back := WattsToDBm(d.Watts())
		return almostEqual(float64(back), float64(d), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPaperNoiseDensities(t *testing.T) {
	// sigma^2 = -174 dBm/Hz and N0 = -171 dBm/Hz from Section 2.3.
	sigma2 := DBmPerHzToWattsPerHz(-174)
	n0 := DBmPerHzToWattsPerHz(-171)
	if !almostEqual(sigma2, 3.9810717055349695e-21, 1e-9) {
		t.Errorf("sigma^2 = %v W/Hz, want ~3.981e-21", sigma2)
	}
	if !almostEqual(n0, 7.943282347242789e-21, 1e-9) {
		t.Errorf("N0 = %v W/Hz, want ~7.943e-21", n0)
	}
	if n0 <= sigma2 {
		t.Errorf("N0 (%v) should exceed sigma^2 (%v): -171 dBm/Hz > -174 dBm/Hz", n0, sigma2)
	}
}

func TestMilliWatt(t *testing.T) {
	if got := MilliWatt(48.64); !almostEqual(float64(got), 0.04864, 1e-12) {
		t.Errorf("MilliWatt(48.64) = %v, want 0.04864", got)
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		s    fmt.Stringer
		want string
	}{
		{DB(40), "40.00 dB"},
		{DBm(-174), "-174.00 dBm"},
		{Meter(250), "250.00 m"},
		{Watt(0.04864), "0.04864 W"},
		{Joule(2), "2 J"},
		{Hertz(40e3), "4e+04 Hz"},
		{Second(5e-6), "5e-06 s"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if !strings.Contains(JoulePerBit(1.9e-18).String(), "J/bit") {
		t.Error("JoulePerBit.String should mention J/bit")
	}
}
