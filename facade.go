package cogmimo

import (
	"context"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/units"
)

func unitsHertz(hz float64) units.Hertz { return units.Hertz(hz) }

// ExperimentIDs lists the reproducible paper artifacts: fig6a, fig6b,
// fig7, fig8, table1, table2, table3, table4.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one paper artifact and returns its report
// as formatted text. Quick shrinks workloads for smoke runs.
func RunExperiment(id string, seed int64, quick bool) (string, error) {
	return RunExperimentCtx(context.Background(), id, seed, quick)
}

// RunExperimentCtx is RunExperiment under a context: cancellation or a
// deadline aborts the run between sweep points and returns ctx's error.
func RunExperimentCtx(ctx context.Context, id string, seed int64, quick bool) (string, error) {
	rep, err := experiments.RunCtx(ctx, id, experiments.Options{Seed: seed, Quick: quick})
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}

// RunAllExperiments regenerates every artifact in ID order and returns
// the concatenated reports.
func RunAllExperiments(seed int64, quick bool) (string, error) {
	return RunAllExperimentsCtx(context.Background(), seed, quick)
}

// RunAllExperimentsCtx is RunAllExperiments under a context.
func RunAllExperimentsCtx(ctx context.Context, seed int64, quick bool) (string, error) {
	reps, err := experiments.RunAllCtx(ctx, experiments.Options{Seed: seed, Quick: quick})
	if err != nil {
		return "", err
	}
	out := ""
	for i, r := range reps {
		if i > 0 {
			out += "\n"
		}
		out += r.String()
	}
	if out == "" {
		return "", fmt.Errorf("cogmimo: no experiments registered")
	}
	return out, nil
}
