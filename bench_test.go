package cogmimo

// The benchmark harness: one benchmark per paper artifact (Figures 6a,
// 6b, 7, 8 and Tables 1-4) regenerating the corresponding report, plus
// the ablation benchmarks DESIGN.md calls out (ēb solver sampling,
// parallel Monte-Carlo scaling, constellation search, phase models,
// clustering, STBC decoding, CSMA contention).

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/beamform"
	"repro/internal/channel"
	"repro/internal/coop"
	"repro/internal/ebtable"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/mathx"
	"repro/internal/multihop"
	"repro/internal/network"
	"repro/internal/sensing"
	"repro/internal/sim"
	"repro/internal/stbc"
)

// benchArtifact regenerates one evaluation artifact per iteration.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, experiments.Options{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig6a(b *testing.B)  { benchArtifact(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { benchArtifact(b, "fig6b") }
func BenchmarkFig7(b *testing.B)   { benchArtifact(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchArtifact(b, "fig8") }
func BenchmarkTable1(b *testing.B) { benchArtifact(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchArtifact(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchArtifact(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchArtifact(b, "table4") }

// BenchmarkEbTableSamples ablates the Monte-Carlo ēb solver's sample
// count against the analytic solution, reporting the relative error.
func BenchmarkEbTableSamples(b *testing.B) {
	exact, err := ebtable.Analytic{}.EbBar(0.001, 2, 2, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, samples := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("samples=%d", samples), func(b *testing.B) {
			b.ReportAllocs()
			var relErr float64
			for i := 0; i < b.N; i++ {
				mc := &ebtable.MonteCarlo{Samples: samples, Seed: int64(i + 1)}
				got, err := mc.EbBar(0.001, 2, 2, 3)
				if err != nil {
					b.Fatal(err)
				}
				relErr = math.Abs(got/exact - 1)
			}
			b.ReportMetric(relErr, "relerr")
		})
	}
}

// BenchmarkMonteCarloParallel ablates worker counts on the shared
// Monte-Carlo runner.
func BenchmarkMonteCarloParallel(b *testing.B) {
	trial := func(rng *rand.Rand) float64 {
		h := channel.Rayleigh(rng, 2, 2)
		return h.FrobeniusNorm2()
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			mc := sim.MonteCarlo{Seed: 1, Workers: workers}
			for i := 0; i < b.N; i++ {
				r := mc.RunMean(100000, trial)
				if r.N() != 100000 {
					b.Fatal("short run")
				}
			}
		})
	}
}

// BenchmarkOptimalB ablates the exhaustive constellation search against
// a fixed b = 2.
func BenchmarkOptimalB(b *testing.B) {
	model, err := energy.New(energy.Paper(40e3), ebtable.Analytic{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := model.OptimalMIMOB(0.001, 2, 2, 250, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fixed-b2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := model.MIMOTx(0.001, 2, 2, 2, 250); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPhaseModels ablates the exact path-length field against the
// far-field approximation in the interweave beamformer.
func BenchmarkPhaseModels(b *testing.B) {
	pair, err := beamform.NewNullPair(geom.Pt(0, 7.5), geom.Pt(0, -7.5), geom.Pt(0, -300), 30)
	if err != nil {
		b.Fatal(err)
	}
	q := geom.Pt(150, 0)
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if pair.AmplitudeAt(q) <= 0 {
				b.Fatal("zero amplitude")
			}
		}
	})
	b.Run("farfield", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if pair.AmplitudeFarField(q) <= 0 {
				b.Fatal("zero amplitude")
			}
		}
	})
}

// BenchmarkClustering measures d-clustering over growing deployments.
// Graph construction happens inside each sub-benchmark before its timer
// resets: a ResetTimer on the parent before nested b.Run calls is a
// no-op, because every sub-benchmark runs on its own timer.
func BenchmarkClustering(b *testing.B) {
	buildGraph := func(b *testing.B, n int) *network.Graph {
		b.Helper()
		dep := network.RandomDeployment(mathx.NewRand(1), n, 500, 500, 1, 10)
		g, err := network.NewGraph(dep, 80)
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	for _, n := range []int{50, 200} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			b.Run("greedy", func(b *testing.B) {
				g := buildGraph(b, n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cl, err := network.DCluster(g, 30)
					if err != nil {
						b.Fatal(err)
					}
					if err := cl.Validate(); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("grid", func(b *testing.B) {
				g := buildGraph(b, n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cl, err := network.DClusterGrid(g, 30)
					if err != nil {
						b.Fatal(err)
					}
					if err := cl.Validate(); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkSTBCDecode measures block decode cost per code.
func BenchmarkSTBCDecode(b *testing.B) {
	rng := mathx.NewRand(1)
	for _, c := range []*stbc.Code{stbc.Alamouti(), stbc.OSTBC3(), stbc.OSTBC4()} {
		b.Run(c.Name(), func(b *testing.B) {
			syms := make([]complex128, c.BlockSymbols())
			for i := range syms {
				syms[i] = mathx.ComplexCN(rng, 1)
			}
			h := channel.Rayleigh(rng, c.Nt(), 2)
			y := c.Transmit(c.Encode(syms), h)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := c.Decode(y, h)
				if len(got) != c.BlockSymbols() {
					b.Fatal("bad decode")
				}
			}
		})
	}
}

// BenchmarkCSMA measures MAC contention resolution.
func BenchmarkCSMA(b *testing.B) {
	for _, stations := range []int{2, 8} {
		b.Run(fmt.Sprintf("stations=%d", stations), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ids := make([]network.NodeID, stations)
				for j := range ids {
					ids[j] = network.NodeID(j)
				}
				m, err := network.NewCSMAMedium(network.DefaultCSMA(), &sim.Engine{}, mathx.NewRand(1), ids)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < stations; j++ {
					m.Enqueue(network.NodeID(j), 10, 3e-4)
				}
				st := m.Run(60)
				if st.Delivered+st.Dropped != stations*10 {
					b.Fatal("frames lost")
				}
			}
		})
	}
}

// BenchmarkEbBarAnalytic measures the closed-form solver itself: it is
// on the hot path of every sweep.
func BenchmarkEbBarAnalytic(b *testing.B) {
	b.ReportAllocs()
	a := ebtable.Analytic{}
	for i := 0; i < b.N; i++ {
		if _, err := a.EbBar(0.001, 2, 2, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableLookup contrasts a precomputed table lookup with a live
// analytic solve — the reason Algorithm 1/2 preprocess at all.
func BenchmarkTableLookup(b *testing.B) {
	tab, err := ebtable.Build(ebtable.Analytic{}, ebtable.Grid{
		Ps: []float64{0.001}, Bs: []int{1, 2, 4}, Mts: []int{1, 2}, Mrs: []int{1, 2, 3},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.EbBar(0.001, 2, 2, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoopScheme measures symbol-level hop simulation throughput.
func BenchmarkCoopScheme(b *testing.B) {
	for _, pair := range [][2]int{{1, 1}, {2, 2}, {4, 4}} {
		b.Run(fmt.Sprintf("%dx%d", pair[0], pair[1]), func(b *testing.B) {
			cfg := coop.Config{
				Mt: pair[0], Mr: pair[1], B: 1,
				SNRPerBit: 10, Bits: 6000, Seed: 1,
			}
			b.SetBytes(6000 / 8)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := coop.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoopSchemeScratch is BenchmarkCoopScheme on a warmed
// caller-owned workspace: the steady state of a Monte-Carlo worker. The
// allocs/op column should read ~0.
func BenchmarkCoopSchemeScratch(b *testing.B) {
	for _, pair := range [][2]int{{1, 1}, {2, 2}, {4, 4}} {
		b.Run(fmt.Sprintf("%dx%d", pair[0], pair[1]), func(b *testing.B) {
			cfg := coop.Config{
				Mt: pair[0], Mr: pair[1], B: 1,
				SNRPerBit: 10, Bits: 6000, Seed: 1,
			}
			ws := coop.NewWorkspace()
			if _, err := coop.RunWith(ws, cfg); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(6000 / 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coop.RunWith(ws, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultihopRoute measures route-level transport.
func BenchmarkMultihopRoute(b *testing.B) {
	b.ReportAllocs()
	cfg := multihop.Config{
		Hops: []multihop.Hop{
			{Mt: 2, Mr: 2, SNRPerBit: 12},
			{Mt: 2, Mr: 3, SNRPerBit: 12},
			{Mt: 3, Mr: 1, SNRPerBit: 12},
		},
		B: 1, Bits: 6000, Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := multihop.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveBudget runs one Wilson-stopped deep-BER point and
// reports the realized spend as trials-to-target. The bench artifact
// pins how many trials the stopping rule needs at a ±10% target; a
// stopping-rule regression shows up as a trials-to-target jump and,
// proportionally, as an ns/op regression bench-compare gates on.
func BenchmarkAdaptiveBudget(b *testing.B) {
	b.ReportAllocs()
	params := map[string]float64{"mt": 2, "mr": 2, "snr_db": 5, "bits": 32}
	budget := adaptive.Budget{TargetRelCI: 0.10, MaxTrials: 32 * sim.ChunkSize}
	mc := sim.MonteCarlo{Seed: 1}
	var trials int
	for i := 0; i < b.N; i++ {
		res, err := adaptive.Run(context.Background(), mc, "coop.ber.adaptive", params, budget)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Trace.Stopped {
			b.Fatal("budget exhausted before the CI target was met")
		}
		trials = res.Trace.Trials
	}
	b.ReportMetric(float64(trials), "trials-to-target")
}

// BenchmarkEnergyDetector measures one sensing decision.
func BenchmarkEnergyDetector(b *testing.B) {
	b.ReportAllocs()
	det, err := sensing.NewDetectorForPfa(1000, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	rng := mathx.NewRand(1)
	for i := 0; i < b.N; i++ {
		det.Sense(rng, i%2 == 0, 0.1)
	}
}

// BenchmarkMathxLarge exercises mathx at the cell-free dimensions
// (100x400 products, 100-dim Hermitian solves with 40 right-hand
// sides) so the bench-regression gate covers the large regime the
// internal/cellfree combiners run in, not just the 4x4 hop matrices.
func BenchmarkMathxLarge(b *testing.B) {
	b.ReportAllocs()
	rng := mathx.NewRand(1)
	h := mathx.NewCMat(100, 400).RandCN(rng)
	hH := h.ConjTransposeInto(nil)
	gram := mathx.NewCMat(100, 100)
	var ch mathx.Cholesky
	rhs := mathx.NewBatchCF64(100, 40)
	seed := mathx.NewCMat(100, 40).RandCN(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MulInto(hH, gram)
		for d := 0; d < gram.Rows; d++ {
			gram.Set(d, d, gram.At(d, d)+100)
		}
		if err := ch.Factor(gram); err != nil {
			b.Fatal(err)
		}
		// seed is row-major dim-by-rhs, which is exactly the lane-major
		// staging layout of the batch solver.
		copy(rhs.Data, seed.Data)
		ch.SolveBatchInto(rhs)
	}
}
