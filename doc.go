// Package cogmimo is a Go reproduction of "Efficient Cooperative MIMO
// Paradigms for Cognitive Radio Networks" (Chen, Hong, Chen; IJNC 2014,
// extending the APDCM/IPPS 2013 workshop paper): cooperative
// Multiple-Input Multiple-Output communication for secondary users in
// cognitive radio networks, covering the overlay, underlay and
// interweave spectrum-sharing paradigms.
//
// The package is a facade over the implementation packages in
// internal/: the Cui-Goldsmith-Bahai energy model and its ēb table
// (internal/energy, internal/ebtable), space-time block codes and
// combiners (internal/stbc), the CoMIMONet cluster network
// (internal/network), the three paradigm analyses (internal/overlay,
// internal/underlay, internal/interweave), the simulated USRP testbed
// (internal/testbed) and the evaluation drivers (internal/experiments).
//
// Quick start:
//
//	sys, err := cogmimo.NewSystem(cogmimo.SystemConfig{BandwidthHz: 40e3})
//	...
//	res, err := sys.AnalyzeOverlay(cogmimo.OverlayScenario{
//		PrimarySeparationM: 250, Relays: 3,
//		DirectBER: 0.005, RelayBER: 0.0005,
//	})
//
// Every table and figure of the paper's evaluation regenerates through
// RunExperiment; see EXPERIMENTS.md for paper-vs-measured notes.
package cogmimo
