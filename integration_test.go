package cogmimo

import (
	"strings"
	"testing"
)

// TestFullPipeline walks the whole public surface once, quick mode:
// every registered experiment regenerates, and the concatenated output
// mentions every artifact.
func TestFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is not short")
	}
	out, err := RunAllExperiments(2, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ExperimentIDs() {
		if !strings.Contains(out, "== "+id+":") {
			t.Errorf("combined output missing %s", id)
		}
	}
	// The reproduction's three headline sentences, checked end to end.
	sys := newSys(t)
	ov, err := sys.AnalyzeOverlay(OverlayScenario{
		PrimarySeparationM: 250, Relays: 3, DirectBER: 0.005, RelayBER: 0.0005,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ov.MaxDistToRxM < 250 {
		t.Errorf("overlay: relays should outrange the direct link, got %v m", ov.MaxDistToRxM)
	}
	un, err := sys.AnalyzeUnderlay(UnderlayScenario{
		TxNodes: 2, RxNodes: 3, ClusterSpanM: 1, HopDistanceM: 200, TargetBER: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	if un.NoiseFloorMargin > 0.02 {
		t.Errorf("underlay: margin %v should be ~2 orders under the reference", un.NoiseFloorMargin)
	}
	iw, err := sys.AnalyzeInterweave(InterweaveScenario{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if iw.MeanAmplitudeAtSr < 1.5 || iw.WorstResidualAtPr > 0.2 {
		t.Errorf("interweave: amplitude %v residual %v", iw.MeanAmplitudeAtSr, iw.WorstResidualAtPr)
	}
}
